#include "crypto/authenticator.hpp"

#include <algorithm>
#include <mutex>

#include "serde/writer.hpp"

namespace gpbft::crypto {

KeyRegistry::KeyRegistry(std::uint64_t genesis_seed) : genesis_seed_(genesis_seed) {}

const Hash256& KeyRegistry::identity_key(NodeId id) const {
  {
    std::shared_lock lock(identity_mu_);
    const auto it = identity_cache_.find(id);
    // References are stable (node-based map, never erased), so returning
    // one after dropping the lock is safe.
    if (it != identity_cache_.end()) return it->second;
  }

  serde::Writer w;
  w.string("gpbft-identity-key");
  w.u64(genesis_seed_);
  w.u64(id.value);
  const Hash256 key = sha256(BytesView(w.buffer().data(), w.buffer().size()));

  std::unique_lock lock(identity_mu_);
  // try_emplace: a concurrent worker may have derived the same (pure,
  // deterministic) value while we did; first insert wins, results agree.
  return identity_cache_.try_emplace(id, key).first->second;
}

const KeyRegistry::SessionEntry& KeyRegistry::session_entry(NodeId a, NodeId b) const {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const std::pair<std::uint64_t, std::uint64_t> link{lo.value, hi.value};
  SessionShard& shard = sessions_[(lo.value * 31 + hi.value) % kSessionShards];
  {
    std::shared_lock lock(shard.mu);
    const auto it = shard.entries.find(link);
    if (it != shard.entries.end()) return it->second;
  }

  serde::Writer w;
  w.string("gpbft-session-key");
  w.u64(hi.value);
  SessionEntry entry;
  entry.key = hmac_sha256(identity_key(lo).view(), BytesView(w.buffer().data(), w.buffer().size()));
  entry.mac = HmacKey(entry.key.view());

  std::unique_lock lock(shard.mu);
  return shard.entries.try_emplace(link, std::move(entry)).first->second;
}

Hash256 KeyRegistry::session_key(NodeId a, NodeId b) const { return session_entry(a, b).key; }

std::array<std::uint8_t, 8> KeyRegistry::tag(NodeId sender, NodeId receiver,
                                             std::span<const BytesView> payload_parts) const {
  const SessionEntry& entry = session_entry(sender, receiver);

  // Byte-identical to the historical Writer-built input: u64(sender) in
  // fixed 8-byte LE, varint(payload length), payload bytes — streamed as
  // parts instead of materialized per receiver. The sender direction is
  // bound into the MAC input so A->B and B->A tags differ even though the
  // session key is symmetric.
  std::uint64_t payload_len = 0;
  for (const BytesView part : payload_parts) payload_len += part.size();

  std::array<std::uint8_t, 18> prefix;  // 8-byte sender + <= 10-byte varint
  std::size_t prefix_len = 0;
  std::uint64_t sender_le = sender.value;
  for (int i = 0; i < 8; ++i) {
    prefix[prefix_len++] = static_cast<std::uint8_t>(sender_le & 0xffu);
    sender_le >>= 8;
  }
  std::uint64_t v = payload_len;
  while (v >= 0x80) {
    prefix[prefix_len++] = static_cast<std::uint8_t>(v) | 0x80u;
    v >>= 7;
  }
  prefix[prefix_len++] = static_cast<std::uint8_t>(v);

  std::array<BytesView, 8> parts;
  parts[0] = BytesView(prefix.data(), prefix_len);
  std::size_t count = 1;
  for (const BytesView part : payload_parts) parts[count++] = part;

  const Hash256 mac = entry.mac.mac(std::span<const BytesView>(parts.data(), count));
  std::array<std::uint8_t, 8> truncated;
  std::copy(mac.bytes.begin(), mac.bytes.begin() + 8, truncated.begin());
  return truncated;
}

Authenticator KeyRegistry::authenticate(NodeId sender, const std::vector<NodeId>& receivers,
                                        std::span<const BytesView> payload_parts) const {
  Authenticator auth;
  auth.sender = sender;
  auth.tags.reserve(receivers.size());
  for (NodeId receiver : receivers) {
    auth.tags.push_back(AuthTag{receiver, tag(sender, receiver, payload_parts)});
  }
  return auth;
}

Authenticator KeyRegistry::authenticate(NodeId sender, const std::vector<NodeId>& receivers,
                                        BytesView payload) const {
  const std::array<BytesView, 1> parts{payload};
  return authenticate(sender, receivers, std::span<const BytesView>(parts.data(), parts.size()));
}

bool KeyRegistry::verify(const Authenticator& auth, NodeId receiver,
                         std::span<const BytesView> payload_parts) const {
  for (const AuthTag& entry : auth.tags) {
    if (entry.receiver != receiver) continue;
    const std::array<std::uint8_t, 8> expected = tag(auth.sender, receiver, payload_parts);
    return constant_time_equal(BytesView(entry.tag.data(), entry.tag.size()),
                               BytesView(expected.data(), expected.size()));
  }
  return false;
}

bool KeyRegistry::verify(const Authenticator& auth, NodeId receiver, BytesView payload) const {
  const std::array<BytesView, 1> parts{payload};
  return verify(auth, receiver, std::span<const BytesView>(parts.data(), parts.size()));
}

}  // namespace gpbft::crypto
