#include "crypto/authenticator.hpp"

#include <algorithm>

#include "serde/writer.hpp"

namespace gpbft::crypto {

KeyRegistry::KeyRegistry(std::uint64_t genesis_seed) : genesis_seed_(genesis_seed) {}

const Hash256& KeyRegistry::identity_key(NodeId id) const {
  auto it = identity_cache_.find(id);
  if (it != identity_cache_.end()) return it->second;

  serde::Writer w;
  w.string("gpbft-identity-key");
  w.u64(genesis_seed_);
  w.u64(id.value);
  Hash256 key = sha256(BytesView(w.buffer().data(), w.buffer().size()));
  return identity_cache_.emplace(id, key).first->second;
}

Hash256 KeyRegistry::session_key(NodeId a, NodeId b) const {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  serde::Writer w;
  w.string("gpbft-session-key");
  w.u64(hi.value);
  return hmac_sha256(identity_key(lo).view(), BytesView(w.buffer().data(), w.buffer().size()));
}

std::array<std::uint8_t, 8> KeyRegistry::tag_for(NodeId sender, NodeId receiver,
                                                 BytesView payload) const {
  const Hash256 key = session_key(sender, receiver);
  // Bind the sender direction into the MAC input so A->B and B->A tags differ
  // even though the session key is symmetric.
  serde::Writer w;
  w.u64(sender.value);
  w.bytes(payload);
  const Hash256 mac = hmac_sha256(key.view(), BytesView(w.buffer().data(), w.buffer().size()));
  std::array<std::uint8_t, 8> tag;
  std::copy(mac.bytes.begin(), mac.bytes.begin() + 8, tag.begin());
  return tag;
}

Authenticator KeyRegistry::authenticate(NodeId sender, const std::vector<NodeId>& receivers,
                                        BytesView payload) const {
  Authenticator auth;
  auth.sender = sender;
  auth.tags.reserve(receivers.size());
  for (NodeId receiver : receivers) {
    auth.tags.push_back(AuthTag{receiver, tag_for(sender, receiver, payload)});
  }
  return auth;
}

bool KeyRegistry::verify(const Authenticator& auth, NodeId receiver, BytesView payload) const {
  for (const AuthTag& entry : auth.tags) {
    if (entry.receiver != receiver) continue;
    const std::array<std::uint8_t, 8> expected = tag_for(auth.sender, receiver, payload);
    return constant_time_equal(BytesView(entry.tag.data(), entry.tag.size()),
                               BytesView(expected.data(), expected.size()));
  }
  return false;
}

}  // namespace gpbft::crypto
