#include "fuzz/targets.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "crypto/authenticator.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"
#include "pbft/messages.hpp"
#include "pow/pow_chain.hpp"
#include "serde/reader.hpp"
#include "sim/scenario.hpp"

namespace gpbft::fuzz {
namespace {

[[noreturn]] void oracle_failure(const char* target, const char* what) {
  std::fprintf(stderr, "fuzz oracle violation [%s]: %s\n", target, what);
  std::abort();
}

/// Totality + round-trip oracle over a `static Result<T> decode(BytesView)`
/// / `Bytes encode() const` codec. Rejection is a clean outcome; acceptance
/// obligates encode ∘ decode to be a fixed point.
template <typename T>
bool roundtrip(const char* name, BytesView data) {
  auto first = T::decode(data);
  if (!first.ok()) return false;
  const Bytes once = first.value().encode();
  auto second = T::decode(BytesView(once.data(), once.size()));
  if (!second.ok()) oracle_failure(name, "re-decode of an accepted value failed");
  const Bytes twice = second.value().encode();
  if (twice != once) oracle_failure(name, "encode is not a fixed point after decode");
  return true;
}

// --- shared seed material ---------------------------------------------------

geo::GeoReport seed_geo() {
  return geo::GeoReport{geo::GeoPoint{12.5, -33.25}, TimePoint{3'000'000'000}};
}

ledger::Transaction seed_tx() {
  return ledger::make_normal_tx(NodeId{7}, 11, Bytes{0xde, 0xad, 0xbe, 0xef}, 10, seed_geo());
}

ledger::Block seed_block() {
  ledger::BlockHeader genesis;  // height 0, zero hashes
  return ledger::build_block(genesis, {seed_tx()}, /*era=*/1, /*view=*/0, /*seq=*/1,
                             TimePoint{2'000'000'000}, /*producer=*/NodeId{1});
}

pow::PowBlock seed_pow_block() {
  pow::PowBlock block;
  block.transactions = {seed_tx()};
  block.header.height = 1;
  block.header.difficulty = 16;
  block.header.nonce = 42;
  block.header.timestamp = TimePoint{2'000'000'000};
  block.header.miner = NodeId{3};
  block.header.merkle_root = block.compute_merkle_root();
  return block;
}

pbft::PrePrepare seed_preprepare() {
  pbft::PrePrepare msg;
  msg.view = 1;
  msg.seq = 2;
  msg.block = seed_block();
  msg.digest = msg.block.hash();
  return msg;
}

pbft::ViewChangeMsg seed_view_change() {
  pbft::ViewChangeMsg msg;
  msg.new_view = 2;
  msg.last_executed = 1;
  pbft::PreparedProof proof;
  proof.view = 1;
  proof.seq = 2;
  proof.block = seed_block();
  proof.digest = proof.block.hash();
  msg.prepared = {proof};
  msg.replica = NodeId{3};
  return msg;
}

// --- cross-cutting targets --------------------------------------------------

/// Drives the serde Reader primitives directly: each input byte selects the
/// next read operation, so the fuzzer explores interleavings of varints,
/// length-prefixed fields and fixed-width reads against a shared cursor.
/// The oracle here is pure totality (no round-trip — the walk is lossy).
bool run_serde_walk(BytesView data) {
  serde::Reader reader(data);
  bool any_ok = false;
  for (int step = 0; step < 4096 && !reader.exhausted(); ++step) {
    auto op = reader.u8();
    if (!op.ok()) break;
    bool ok = false;
    switch (op.value() % 11) {
      case 0: ok = reader.u8().ok(); break;
      case 1: ok = reader.u16().ok(); break;
      case 2: ok = reader.u32().ok(); break;
      case 3: ok = reader.u64().ok(); break;
      case 4: ok = reader.i64().ok(); break;
      case 5: ok = reader.f64().ok(); break;
      case 6: ok = reader.boolean().ok(); break;
      case 7: ok = reader.varint().ok(); break;
      case 8: {
        auto len = reader.u8();
        ok = len.ok() && reader.raw(len.value()).ok();
        break;
      }
      case 9: ok = reader.bytes().ok(); break;
      case 10: ok = reader.string().ok(); break;
    }
    any_ok = any_ok || ok;
  }
  return any_ok;
}

Bytes seed_serde_walk() {
  // One of each op family with a plausible operand following it.
  return Bytes{
      0,  0x41,                                            // u8
      1,  0x01, 0x02,                                      // u16
      7,  0xac, 0x02,                                      // varint (300)
      8,  0x03, 0xaa, 0xbb, 0xcc,                          // raw(3)
      10, 0x02, 'h',  'i',                                 // string (varint len 2)
      3,  0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,  // u64
  };
}

/// Fuzzes the MAC framing (pbft::seal / pbft::open). Input framing:
/// byte 0 = message type, byte 1 bit 0 = compute_macs, rest = sealed
/// payload. On accept, re-seal must re-open to the same body — and with
/// MACs on, re-sealing must reproduce the input bytes exactly (the HMAC is
/// deterministic).
bool run_seal(BytesView data) {
  static const crypto::KeyRegistry keys(0x5eed);
  if (data.size() < 2) return false;
  const auto type = static_cast<net::MessageType>(data[0]);
  const bool macs = (data[1] & 1) != 0;
  const BytesView sealed = data.subspan(2);
  auto opened = pbft::open(keys, /*sender=*/NodeId{1}, /*receiver=*/NodeId{2}, type, sealed, macs);
  if (!opened.ok()) return false;
  const Bytes& body = opened.value();
  const Bytes resealed =
      pbft::seal(keys, NodeId{1}, NodeId{2}, type, BytesView(body.data(), body.size()), macs);
  if (macs && (resealed.size() != sealed.size() ||
               !std::equal(resealed.begin(), resealed.end(), sealed.begin()))) {
    oracle_failure("seal", "re-seal with MACs is not a fixed point");
  }
  auto reopened =
      pbft::open(keys, NodeId{1}, NodeId{2}, type, BytesView(resealed.data(), resealed.size()), macs);
  if (!reopened.ok()) oracle_failure("seal", "re-open of a re-sealed body failed");
  if (reopened.value() != body) oracle_failure("seal", "re-opened body differs");
  return true;
}

Bytes seed_seal() {
  static const crypto::KeyRegistry keys(0x5eed);
  pbft::Prepare msg;
  msg.view = 1;
  msg.seq = 2;
  msg.replica = NodeId{1};
  const Bytes body = msg.encode();
  const Bytes sealed = pbft::seal(keys, NodeId{1}, NodeId{2}, pbft::msg_type::kPrepare,
                                  BytesView(body.data(), body.size()), /*compute_macs=*/true);
  Bytes out{static_cast<std::uint8_t>(pbft::msg_type::kPrepare), 0x01};
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

/// Fuzzes the strict scenario parser. On accept, print ∘ parse must be a
/// fixed point (the format guarantees parse(print(spec)) == spec).
bool run_scenario(BytesView data) {
  auto spec = sim::parse_scenario(to_string(data));
  if (!spec.ok()) return false;
  const std::string printed = sim::print_scenario(spec.value());
  auto reparsed = sim::parse_scenario(printed);
  if (!reparsed.ok()) oracle_failure("scenario", "re-parse of a printed spec failed");
  if (sim::print_scenario(reparsed.value()) != printed) {
    oracle_failure("scenario", "print is not a fixed point after parse");
  }
  return true;
}

Bytes seed_scenario() { return to_bytes(sim::print_scenario(sim::ScenarioSpec{})); }

// --- registry ---------------------------------------------------------------

template <typename T>
bool run_codec(BytesView data);
#define GPBFT_FUZZ_CODEC(tag, type)                                             \
  template <>                                                                   \
  bool run_codec<type>(BytesView data) {                                        \
    return roundtrip<type>(tag, data);                                          \
  }

GPBFT_FUZZ_CODEC("transaction", ledger::Transaction)
GPBFT_FUZZ_CODEC("block_header", ledger::BlockHeader)
GPBFT_FUZZ_CODEC("block", ledger::Block)
GPBFT_FUZZ_CODEC("pow_block_header", pow::PowBlockHeader)
GPBFT_FUZZ_CODEC("pow_block", pow::PowBlock)
GPBFT_FUZZ_CODEC("client_request", pbft::ClientRequest)
GPBFT_FUZZ_CODEC("preprepare", pbft::PrePrepare)
GPBFT_FUZZ_CODEC("prepare", pbft::Prepare)
GPBFT_FUZZ_CODEC("commit", pbft::Commit)
GPBFT_FUZZ_CODEC("reply", pbft::Reply)
GPBFT_FUZZ_CODEC("checkpoint", pbft::CheckpointMsg)
GPBFT_FUZZ_CODEC("view_change", pbft::ViewChangeMsg)
GPBFT_FUZZ_CODEC("new_view", pbft::NewViewMsg)
GPBFT_FUZZ_CODEC("sync_request", pbft::SyncRequest)
GPBFT_FUZZ_CODEC("sync_response", pbft::SyncResponse)
GPBFT_FUZZ_CODEC("geo_report", pbft::GeoReportMsg)
GPBFT_FUZZ_CODEC("era_halt", pbft::EraHaltMsg)
GPBFT_FUZZ_CODEC("era_launch", pbft::EraLaunchMsg)
#undef GPBFT_FUZZ_CODEC

std::vector<FuzzTarget> build_targets() {
  return {
      {"serde_walk", run_serde_walk, seed_serde_walk},
      {"transaction", run_codec<ledger::Transaction>, [] { return seed_tx().encode(); }},
      {"block_header", run_codec<ledger::BlockHeader>,
       [] { return seed_block().header.encode(); }},
      {"block", run_codec<ledger::Block>, [] { return seed_block().encode(); }},
      {"pow_block_header", run_codec<pow::PowBlockHeader>,
       [] { return seed_pow_block().header.encode(); }},
      {"pow_block", run_codec<pow::PowBlock>, [] { return seed_pow_block().encode(); }},
      {"client_request", run_codec<pbft::ClientRequest>,
       [] { return pbft::ClientRequest{seed_tx()}.encode(); }},
      {"preprepare", run_codec<pbft::PrePrepare>, [] { return seed_preprepare().encode(); }},
      {"prepare", run_codec<pbft::Prepare>,
       [] {
         pbft::Prepare msg;
         msg.view = 1;
         msg.seq = 2;
         msg.digest = seed_block().hash();
         msg.replica = NodeId{3};
         return msg.encode();
       }},
      {"commit", run_codec<pbft::Commit>,
       [] {
         pbft::Commit msg;
         msg.view = 1;
         msg.seq = 2;
         msg.digest = seed_block().hash();
         msg.replica = NodeId{3};
         return msg.encode();
       }},
      {"reply", run_codec<pbft::Reply>,
       [] {
         pbft::Reply msg;
         msg.view = 1;
         msg.replica = NodeId{2};
         msg.tx_digest = seed_tx().digest();
         msg.height = 1;
         return msg.encode();
       }},
      {"checkpoint", run_codec<pbft::CheckpointMsg>,
       [] {
         pbft::CheckpointMsg msg;
         msg.seq = 16;
         msg.chain_digest = seed_block().hash();
         msg.replica = NodeId{2};
         return msg.encode();
       }},
      {"view_change", run_codec<pbft::ViewChangeMsg>,
       [] { return seed_view_change().encode(); }},
      {"new_view", run_codec<pbft::NewViewMsg>,
       [] {
         pbft::NewViewMsg msg;
         msg.new_view = 2;
         msg.proofs = {seed_view_change()};
         msg.preprepares = {seed_preprepare()};
         msg.primary = NodeId{2};
         return msg.encode();
       }},
      {"sync_request", run_codec<pbft::SyncRequest>,
       [] {
         pbft::SyncRequest msg;
         msg.from_height = 3;
         msg.requester = NodeId{4};
         return msg.encode();
       }},
      {"sync_response", run_codec<pbft::SyncResponse>,
       [] {
         pbft::SyncResponse msg;
         msg.blocks = {seed_block()};
         msg.responder = NodeId{2};
         return msg.encode();
       }},
      {"geo_report", run_codec<pbft::GeoReportMsg>,
       [] {
         pbft::GeoReportMsg msg;
         msg.device = NodeId{9};
         msg.latitude = 12.5;
         msg.longitude = -33.25;
         msg.reported_at = TimePoint{3'000'000'000};
         return msg.encode();
       }},
      {"era_halt", run_codec<pbft::EraHaltMsg>,
       [] {
         pbft::EraHaltMsg msg;
         msg.closing_era = 1;
         msg.sender = NodeId{2};
         return msg.encode();
       }},
      {"era_launch", run_codec<pbft::EraLaunchMsg>,
       [] {
         pbft::EraLaunchMsg msg;
         msg.config.era = 2;
         msg.config.endorsers = {NodeId{1}, NodeId{2}, NodeId{3}};
         msg.config.cells = {"u4pruyd", "u4pruyf", "u4pruyc"};
         msg.config_height = 5;
         msg.sender = NodeId{1};
         msg.blocks = {seed_block()};
         return msg.encode();
       }},
      {"seal", run_seal, seed_seal},
      {"scenario", run_scenario, seed_scenario},
  };
}

}  // namespace

const std::vector<FuzzTarget>& targets() {
  static const std::vector<FuzzTarget> registry = build_targets();
  return registry;
}

const FuzzTarget* find_target(std::string_view name) {
  for (const auto& target : targets()) {
    if (name == target.name) return &target;
  }
  return nullptr;
}

}  // namespace gpbft::fuzz
