// Deterministic protocol fuzzer: named targets over every wire codec.
//
// Each FuzzTarget wraps one decode path in a totality + round-trip oracle:
//
//  * Totality — run() must return for ANY input bytes. A crash, sanitizer
//    report, unbounded allocation or uncaught exception is a bug in the
//    decoder, exactly the class of defect the wire-tamper adversary
//    (net::TamperRule) probes at the system level. The fuzzer probes it at
//    the unit level, one codec at a time.
//  * Round-trip — when a decoder ACCEPTS an input, re-encoding the decoded
//    value and decoding it again must succeed and re-encode to the same
//    bytes (encode ∘ decode is a fixed point after one normalisation pass).
//    A violation aborts the process so it is loud under CI and libFuzzer
//    alike.
//
// The same registry backs three consumers: the gpbft_fuzz CLI driver
// (corpus generation / replay / deterministic mutation, buildable with any
// C++20 compiler), the optional libFuzzer entry point (GPBFT_FUZZ=ON,
// requires Clang), and the golden-rejection tests over the checked-in
// corpus (tests/wire_fuzz_test.cpp).
#pragma once

#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace gpbft::fuzz {

/// One fuzz entry point.
struct FuzzTarget {
  /// Stable name; also the corpus subdirectory (fuzz/corpus/<name>/).
  const char* name;
  /// Feeds `data` to the target's decode path. Returns true when the input
  /// was accepted (decoded cleanly), false when it was rejected. Must never
  /// crash; aborts on a round-trip oracle violation.
  bool (*run)(BytesView data);
  /// Small valid input for the target — the corpus seed and the starting
  /// point of the deterministic mutation loop.
  Bytes (*seed)();
};

/// All registered targets: one per wire codec (transactions, blocks, PoW
/// blocks, the thirteen PBFT/G-PBFT message bodies) plus the cross-cutting
/// drivers serde_walk (raw Reader primitives), seal (MAC framing) and
/// scenario (the key=value scenario parser).
[[nodiscard]] const std::vector<FuzzTarget>& targets();

/// Looks a target up by name; nullptr when absent.
[[nodiscard]] const FuzzTarget* find_target(std::string_view name);

}  // namespace gpbft::fuzz
