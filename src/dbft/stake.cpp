#include "dbft/stake.hpp"

#include <algorithm>
#include <map>

namespace gpbft::dbft {

Amount StakeRegistry::stake_of(NodeId holder) const {
  const auto it = stakes_.find(holder);
  return it == stakes_.end() ? 0 : it->second;
}

Amount StakeRegistry::weight_of(NodeId candidate) const {
  Amount weight = 0;
  for (const auto& [voter, voted_for] : votes_) {
    if (voted_for == candidate) weight += stake_of(voter);
  }
  return weight;
}

std::vector<NodeId> StakeRegistry::elect(std::size_t count) const {
  std::map<NodeId, Amount> weights;
  for (const auto& [voter, candidate] : votes_) {
    weights[candidate] += stake_of(voter);
  }

  std::vector<std::pair<NodeId, Amount>> ranked(weights.begin(), weights.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::vector<NodeId> elected;
  for (const auto& [candidate, weight] : ranked) {
    if (weight == 0 || elected.size() >= count) break;
    elected.push_back(candidate);
  }
  return elected;
}

}  // namespace gpbft::dbft
