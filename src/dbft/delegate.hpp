// dBFT delegate node (the NEO-style baseline of the paper's Table IV).
//
// Differences from plain PBFT, layered on the same engine:
//  * by default the dBFT 2.0 rule: a block finalizes after the full
//    PREPARE + COMMIT exchange. The original dBFT 1.0 two-phase rule
//    (finalize on a 2f+1 PREPARE quorum, no COMMIT round) is kept as an
//    opt-in ablation knob (`legacy_two_phase`) — it is the historically
//    deployed protocol, but it can fork under message loss + view change
//    (the defect NEO fixed by adding the commit phase in dBFT 2.0), and
//    our wire-tamper campaigns reproduce exactly that fork;
//  * the speaker rotates every block: speaker(height, view) =
//    delegates[(height + view) mod c], so view changes skip a faulty
//    speaker within a height and rotation happens naturally across heights;
//  * block pacing: the speaker publishes a block at a fixed interval (NEO:
//    ~15 s — exactly the "average latency of dBFT to produce a block is 15
//    seconds, not suitable for IoT" critique in §VI-A), not as soon as
//    transactions arrive;
//  * delegates are elected by on-chain stake voting: vote transactions
//    update every node's StakeRegistry deterministically, and at each
//    epoch boundary (every `epoch_blocks`) the roster is recomputed;
//  * published blocks are broadcast to non-delegate observers, so every
//    dBFT node follows the chain and derives the same elections.
#pragma once

#include <functional>
#include <optional>

#include "dbft/stake.hpp"
#include "pbft/replica.hpp"

namespace gpbft::dbft {

/// Message type for blocks published to observers (disjoint ranges: PBFT
/// 1-10, G-PBFT 20-22, PoW 40, dBFT 41).
inline constexpr net::MessageType kPublishedBlock = 41;

struct DbftConfig {
  pbft::PbftConfig pbft;  // two_phase is derived from legacy_two_phase below
  /// Opt into the dBFT 1.0 finality rule (execute at 2f+1 PREPAREs, no
  /// COMMIT round). Off by default: 1.0 forks under message loss + view
  /// change, which is why NEO moved to the three-phase 2.0 protocol.
  bool legacy_two_phase{false};
  /// Block production cadence (NEO: ~15 s).
  Duration block_interval = Duration::seconds(15);
  /// Delegates elected per epoch.
  std::size_t delegate_count{7};
  /// Blocks per election epoch.
  SeqNum epoch_blocks{16};
};

/// Builds a stake-vote transaction: `voter` votes for `candidate`. The
/// payload is the tagged candidate id; every replica parses executed vote
/// transactions into its registry.
[[nodiscard]] ledger::Transaction make_vote_tx(NodeId voter, RequestId request_id,
                                               NodeId candidate, const geo::GeoReport& geo);

/// Parses a vote transaction; nullopt when `tx` is not a vote.
[[nodiscard]] std::optional<NodeId> parse_vote_tx(const ledger::Transaction& tx);

class Delegate : public pbft::Replica {
 public:
  /// (era-like) callback after an epoch re-election: (height, new roster).
  using RosterCallback = std::function<void(Height, const std::vector<NodeId>&)>;

  Delegate(NodeId id, ledger::Block genesis, DbftConfig config, StakeRegistry initial_stakes,
           std::vector<NodeId> observers, net::Network& network,
           const crypto::KeyRegistry& keys);

  /// Attaches and arms the block-interval pacing timer.
  void start_protocol();
  void stop_protocol();

  [[nodiscard]] bool is_delegate() const;
  [[nodiscard]] const std::vector<NodeId>& delegates() const { return delegates_; }
  [[nodiscard]] const StakeRegistry& stakes() const { return stakes_; }
  [[nodiscard]] std::uint64_t epochs_completed() const { return epochs_completed_; }

  void set_roster_callback(RosterCallback cb) { roster_cb_ = std::move(cb); }

  /// Speaker rotation: delegates[(next height + view) mod c].
  [[nodiscard]] NodeId primary_of(ViewId view) const override;

 protected:
  void on_executed(const ledger::Block& block) override;
  void handle_extra(const net::Envelope& envelope) override;
  /// Pacing gate: a proposal may only happen one block interval after the
  /// previous block.
  [[nodiscard]] bool ready_to_propose() const override {
    return now() - last_block_time_ >= config_.block_interval;
  }

 private:
  void arm_pacing_timer();
  void on_pacing_tick();
  void maybe_reelect(Height height);
  void publish_block(const ledger::Block& block);

  DbftConfig config_;
  StakeRegistry stakes_;
  std::vector<NodeId> delegates_;
  std::vector<NodeId> observers_;  // all dBFT nodes (for block publishing)
  TimePoint last_block_time_{};
  bool protocol_started_{false};
  std::uint64_t epochs_completed_{0};
  RosterCallback roster_cb_;
};

}  // namespace gpbft::dbft
