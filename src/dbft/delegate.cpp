#include "dbft/delegate.hpp"

#include "obs/profiler.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace gpbft::dbft {

namespace {

constexpr std::string_view kVoteTag = "dbft-vote";

std::vector<NodeId> genesis_roster(const ledger::Block& genesis) {
  for (const ledger::Transaction& tx : genesis.transactions) {
    if (tx.kind == ledger::TxKind::Config) return tx.era_config.endorsers;
  }
  return {};
}

pbft::PbftConfig phase_rule(const DbftConfig& config) {
  // dBFT 2.0 (full PREPARE + COMMIT) unless the caller opts into the 1.0
  // two-phase ablation — see the legacy_two_phase comment in delegate.hpp.
  pbft::PbftConfig pbft = config.pbft;
  pbft.two_phase = config.legacy_two_phase;
  return pbft;
}

}  // namespace

ledger::Transaction make_vote_tx(NodeId voter, RequestId request_id, NodeId candidate,
                                 const geo::GeoReport& geo) {
  serde::Writer w;
  w.string(std::string(kVoteTag));
  w.u64(candidate.value);
  return ledger::make_normal_tx(voter, request_id, w.take(), /*fee=*/1, geo);
}

std::optional<NodeId> parse_vote_tx(const ledger::Transaction& tx) {
  if (tx.kind != ledger::TxKind::Normal) return std::nullopt;
  serde::Reader r(BytesView(tx.payload.data(), tx.payload.size()));
  auto tag = r.string(32);
  if (!tag || tag.value() != kVoteTag) return std::nullopt;
  auto candidate = r.u64();
  if (!candidate || !r.exhausted()) return std::nullopt;
  return NodeId{candidate.value()};
}

Delegate::Delegate(NodeId id, ledger::Block genesis, DbftConfig config,
                   StakeRegistry initial_stakes, std::vector<NodeId> observers,
                   net::Network& network, const crypto::KeyRegistry& keys)
    : Replica(id, genesis_roster(genesis), genesis, phase_rule(config), network, keys),
      config_(config),
      stakes_(std::move(initial_stakes)),
      delegates_(genesis_roster(genesis)),
      observers_(std::move(observers)) {}

void Delegate::start_protocol() {
  if (protocol_started_) return;
  protocol_started_ = true;
  start();
  last_block_time_ = now();
  arm_pacing_timer();
}

void Delegate::stop_protocol() {
  protocol_started_ = false;
  stop();
}

bool Delegate::is_delegate() const {
  return std::find(delegates_.begin(), delegates_.end(), id()) != delegates_.end();
}

NodeId Delegate::primary_of(ViewId view) const {
  if (delegates_.empty()) return Replica::primary_of(view);
  // NEO rotation: the speaker advances every block; a view change skips to
  // the next delegate within the same height.
  const std::uint64_t next_height = chain().height() + 1;
  return delegates_[static_cast<std::size_t>((next_height + view) % delegates_.size())];
}

void Delegate::arm_pacing_timer() {
  schedule_protected(config_.block_interval / 8, [this]() {
    if (!protocol_started_) return;
    on_pacing_tick();
    arm_pacing_timer();
  });
}

void Delegate::on_pacing_tick() {
  if (network().is_crashed(id()) || !is_delegate()) return;
  // ready_to_propose() enforces the cadence; this tick just wakes the
  // engine up once the interval has elapsed (no empty blocks: the engine
  // only proposes when the mempool is non-empty).
  maybe_propose();
}

void Delegate::on_executed(const ledger::Block& block) {
  last_block_time_ = now();

  for (const ledger::Transaction& tx : block.transactions) {
    if (const auto candidate = parse_vote_tx(tx)) {
      stakes_.vote(tx.sender, *candidate);
    }
  }

  // The speaker publishes the finalized block to non-delegate observers.
  if (block.header.producer == id()) {
    publish_block(block);
    telemetry().count("dbft.blocks_published", id());
  }

  if (block.header.height % config_.epoch_blocks == 0) maybe_reelect(block.header.height);

  // dBFT blocks are final once executed (2.0: after the COMMIT quorum;
  // legacy 1.0: at 2f+1 PREPAREs), so every executed block is a durability
  // point: a restarted delegate resumes at its exact executed height.
  persist_now();
}

void Delegate::maybe_reelect(Height height) {
  std::vector<NodeId> elected = stakes_.elect(config_.delegate_count);
  if (elected.size() < 4) return;  // not enough voted candidates for BFT
  std::vector<NodeId> sorted_elected = elected;
  std::vector<NodeId> sorted_current = delegates_;
  std::sort(sorted_elected.begin(), sorted_elected.end());
  std::sort(sorted_current.begin(), sorted_current.end());
  if (sorted_elected == sorted_current) return;

  delegates_ = std::move(elected);
  reconfigure_committee(delegates_);
  ++epochs_completed_;
  telemetry().count("dbft.epochs_completed", id());
  telemetry().instant("epoch.reelect", "dbft", id(),
                      {{"height", std::to_string(height)},
                       {"delegates", std::to_string(delegates_.size())}});
  log_info(id().str() + ": dbft epoch at height " + std::to_string(height) + ", " +
           std::to_string(delegates_.size()) + " delegates");
  if (roster_cb_) roster_cb_(height, delegates_);
}

void Delegate::publish_block(const ledger::Block& block) {
  const Bytes encoded = block.encode();
  std::vector<NodeId> targets;
  targets.reserve(observers_.size());
  for (NodeId observer : observers_) {
    if (observer == id()) continue;
    if (std::find(delegates_.begin(), delegates_.end(), observer) != delegates_.end()) {
      continue;  // delegates executed it themselves
    }
    targets.push_back(observer);
  }
  send_to_each(targets, kPublishedBlock, BytesView(encoded.data(), encoded.size()));
}

void Delegate::handle_extra(const net::Envelope& envelope) {
  GPBFT_PROFILE_SCOPE("dbft.delegate.handle");
  if (envelope.type != kPublishedBlock) {
    Replica::handle_extra(envelope);
    return;
  }
  auto body = pbft::open_envelope(keys(), id(), envelope, /*compute_macs=*/false);
  if (!body) {
    network().note_rejected(envelope.type);
    return;
  }
  auto block = ledger::Block::decode(body.value());
  if (!block) {
    network().note_rejected(envelope.type);
    return;
  }

  const Height incoming = block.value().header.height;
  if (incoming == chain().height() + 1) {
    if (auto adopted = adopt_chain_suffix({std::move(block.value())}); !adopted) {
      log_debug(id().str() + ": published block rejected: " + adopted.error());
    }
  } else if (incoming > chain().height() + 1) {
    // Missed an earlier publication: fetch the gap from the producer.
    pbft::SyncRequest request;
    request.from_height = chain().height() + 1;
    request.requester = id();
    const Bytes req = request.encode();
    send_to(envelope.from, pbft::msg_type::kSyncRequest, BytesView(req.data(), req.size()));
  }
}

}  // namespace gpbft::dbft
