// Stake registry and delegate election for the dBFT baseline.
//
// NEO's dBFT "determines the consensus committee by real-time blockchain
// voting" (§VI-A of the paper): token holders vote for candidates, and the
// top candidates by voted stake become the consensus delegates. Votes are
// carried as ordinary transactions (see make_vote_tx in delegate.hpp), so
// every node replaying the chain derives the same registry and the same
// delegate set — elections are deterministic chain state.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace gpbft::dbft {

class StakeRegistry {
 public:
  /// Sets a holder's stake (genesis distribution or balance updates).
  void set_stake(NodeId holder, Amount stake) { stakes_[holder] = stake; }
  [[nodiscard]] Amount stake_of(NodeId holder) const;

  /// Casts (or replaces) `voter`'s vote for `candidate`.
  void vote(NodeId voter, NodeId candidate) { votes_[voter] = candidate; }
  void clear_vote(NodeId voter) { votes_.erase(voter); }

  /// Voted weight of a candidate: sum of its voters' stakes.
  [[nodiscard]] Amount weight_of(NodeId candidate) const;

  /// Top `count` candidates by voted weight (ties broken by lower id);
  /// candidates with zero weight are not elected. Fewer than `count`
  /// results mean not enough candidates have votes.
  [[nodiscard]] std::vector<NodeId> elect(std::size_t count) const;

  [[nodiscard]] std::size_t holder_count() const { return stakes_.size(); }
  [[nodiscard]] std::size_t vote_count() const { return votes_.size(); }

 private:
  std::unordered_map<NodeId, Amount> stakes_;
  std::unordered_map<NodeId, NodeId> votes_;  // voter -> candidate
};

}  // namespace gpbft::dbft
