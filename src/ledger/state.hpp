// Application/ledger state and fee accounting.
//
// Applying a block updates:
//  * per-address balances — fees are debited from senders and credited to
//    the incentive mechanism's recipients (70% producer / 30% endorsers,
//    §III-B5);
//  * a key-value view of the latest normal-transaction payload per sender
//    (the "ledger status" that IoT data changes, §III-B2);
//  * counters used by tests and the experiment harness.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/address.hpp"
#include "ledger/block.hpp"

namespace gpbft::ledger {

/// Reward fractions from §III-B5 of the paper.
inline constexpr double kProducerFeeShare = 0.70;
inline constexpr double kEndorserFeeShare = 0.30;

class State {
 public:
  State() = default;

  /// Applies every transaction of a block and distributes its fees to the
  /// producer and the given endorsing peers.
  void apply_block(const Block& block, const std::vector<NodeId>& endorsers);

  /// Balance of an address (0 for unknown addresses; balances may go
  /// negative in accounting terms, tracked as signed).
  [[nodiscard]] std::int64_t balance(const crypto::Address& address) const;
  [[nodiscard]] std::int64_t balance_of_node(NodeId id) const;

  /// Latest normal payload recorded for a sender.
  [[nodiscard]] std::optional<Bytes> latest_payload(NodeId sender) const;

  [[nodiscard]] std::uint64_t applied_transactions() const { return applied_transactions_; }
  [[nodiscard]] std::uint64_t applied_blocks() const { return applied_blocks_; }

 private:
  void credit(const crypto::Address& address, std::int64_t amount);

  std::unordered_map<crypto::Address, std::int64_t> balances_;
  std::unordered_map<NodeId, Bytes> latest_payloads_;
  std::uint64_t applied_transactions_{0};
  std::uint64_t applied_blocks_{0};
};

}  // namespace gpbft::ledger
