// Blocks.
//
// A block commits an ordered batch of transactions agreed by one PBFT
// instance. The header records the era/view/sequence coordinates of that
// agreement plus the producer (the primary that proposed it), which the
// incentive mechanism pays 70% of the block's fees.
#pragma once

#include <vector>

#include "common/result.hpp"
#include "crypto/merkle.hpp"
#include "ledger/transaction.hpp"

namespace gpbft::ledger {

struct BlockHeader {
  Height height{0};
  crypto::Hash256 prev_hash;
  crypto::Hash256 merkle_root;
  EraId era{0};
  ViewId view{0};
  SeqNum seq{0};
  TimePoint timestamp;
  NodeId producer;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<BlockHeader> decode(BytesView data);

  friend bool operator==(const BlockHeader&, const BlockHeader&) = default;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Block> decode(BytesView data);

  /// Hash of the header (the merkle_root already commits to the body).
  [[nodiscard]] crypto::Hash256 hash() const;

  /// Recomputes the Merkle root from the transactions.
  [[nodiscard]] crypto::Hash256 compute_merkle_root() const;

  /// Total fees carried by the block's transactions.
  [[nodiscard]] Amount total_fees() const;

  friend bool operator==(const Block&, const Block&) = default;
};

/// Builds a block over `transactions` on top of `prev`, filling the Merkle
/// root and consensus coordinates.
[[nodiscard]] Block build_block(const BlockHeader& prev, std::vector<Transaction> transactions,
                                EraId era, ViewId view, SeqNum seq, TimePoint timestamp,
                                NodeId producer);

}  // namespace gpbft::ledger
