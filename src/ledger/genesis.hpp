// Genesis block and chain configuration (§III-C of the paper).
//
// The genesis block names the initial (core-node) endorsers with their
// geographic locations, and carries the admittance policies: blacklist,
// whitelist, and the minimum / maximum endorser counts. Below the minimum
// the system stops accepting transactions; at the maximum the endorser
// election pauses until old endorsers leave and no era switch adds members.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "geo/reputation.hpp"
#include "ledger/block.hpp"

namespace gpbft::ledger {

/// One initial endorser: identity plus its fixed location.
struct EndorserInfo {
  NodeId id;
  geo::GeoPoint location;

  friend bool operator==(const EndorserInfo&, const EndorserInfo&) = default;
};

struct AdmittancePolicy {
  std::vector<NodeId> blacklist;
  std::vector<NodeId> whitelist;
  std::size_t min_endorsers{4};
  std::size_t max_endorsers{40};

  [[nodiscard]] bool blacklisted(NodeId id) const;
  [[nodiscard]] bool whitelisted(NodeId id) const;
};

/// Full chain configuration fixed at genesis.
struct GenesisConfig {
  /// Seeds the deployment's key registry (trusted setup, see crypto docs).
  std::uint64_t chain_seed{1};

  std::vector<EndorserInfo> initial_endorsers;
  AdmittancePolicy policy;

  /// Era switch period T (§III-E): Algorithm 1 runs and the roster is
  /// reconfigured every era_period.
  Duration era_period = Duration::seconds(60);

  /// How long a device must stay put to qualify as endorser (72 h in the
  /// paper; examples/tests shrink it to keep runs small).
  Duration promotion_threshold = Duration::hours(72);

  /// Algorithm 1's n: minimum number of geo reports in the lookback window
  /// for a node to be judged at all.
  std::size_t min_geo_reports{3};

  /// Lookback window t of the chain-based G(v, t) query.
  Duration geo_window = Duration::seconds(60);

  /// How often devices upload their location (periodic reports, §III-B3).
  Duration geo_report_period = Duration::seconds(10);

  /// Geohash prefix of the deployment area; reports outside it are invalid
  /// (all devices of one application sit in a small physical area, §III-A).
  std::string area_prefix;

  /// Reputation model for the election (off by default: the stock paper
  /// protocol ranks by geographic timer alone). When enabled, the roster is
  /// ranked by timer × score, quarantined devices are demoted at the next
  /// era switch, and configuration blocks carry the score snapshot.
  geo::ReputationParams reputation;

  /// A committee member whose geo-report count in the lookback window
  /// exceeds `sybil_rate_factor` × the expected periodic count is flagged
  /// as a Sybil report flood at the era switch (reputation strike).
  std::size_t sybil_rate_factor{3};
};

/// Builds the genesis block: height 0, zero previous hash, and one
/// configuration transaction carrying the initial roster (era 0).
[[nodiscard]] Block make_genesis_block(const GenesisConfig& config);

}  // namespace gpbft::ledger
