#include "ledger/state.hpp"

#include <cmath>

namespace gpbft::ledger {

void State::credit(const crypto::Address& address, std::int64_t amount) {
  balances_[address] += amount;
}

void State::apply_block(const Block& block, const std::vector<NodeId>& endorsers) {
  Amount total_fees = 0;
  for (const Transaction& tx : block.transactions) {
    total_fees += tx.fee;
    credit(tx.sender_address, -static_cast<std::int64_t>(tx.fee));
    if (tx.kind == TxKind::Normal) latest_payloads_[tx.sender] = tx.payload;
    ++applied_transactions_;
  }

  if (total_fees > 0) {
    // 70% to the producer; 30% split evenly across endorsing peers, with
    // the integer remainder going to the producer so no fee unit is lost.
    const auto producer_share =
        static_cast<std::int64_t>(std::floor(static_cast<double>(total_fees) * kProducerFeeShare));
    std::int64_t endorser_pool = static_cast<std::int64_t>(total_fees) - producer_share;

    std::vector<NodeId> peers;
    for (NodeId id : endorsers) {
      if (id != block.header.producer) peers.push_back(id);
    }

    std::int64_t producer_total = producer_share;
    if (!peers.empty()) {
      const std::int64_t each = endorser_pool / static_cast<std::int64_t>(peers.size());
      for (NodeId id : peers) credit(crypto::address_for_node(id), each);
      producer_total += endorser_pool - each * static_cast<std::int64_t>(peers.size());
    } else {
      producer_total += endorser_pool;
    }
    credit(crypto::address_for_node(block.header.producer), producer_total);
  }

  ++applied_blocks_;
}

std::int64_t State::balance(const crypto::Address& address) const {
  const auto it = balances_.find(address);
  return it == balances_.end() ? 0 : it->second;
}

std::int64_t State::balance_of_node(NodeId id) const {
  return balance(crypto::address_for_node(id));
}

std::optional<Bytes> State::latest_payload(NodeId sender) const {
  const auto it = latest_payloads_.find(sender);
  if (it == latest_payloads_.end()) return std::nullopt;
  return it->second;
}

}  // namespace gpbft::ledger
