// Mempool: pending transactions awaiting inclusion.
//
// FIFO with digest-based dedup. The primary drains a bounded batch per
// consensus instance; transactions already committed are filtered on pop so
// retransmissions (the client sends to multiple endorsers, §III-B1) do not
// double-commit.
#pragma once

#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "ledger/transaction.hpp"

namespace gpbft::ledger {

class Mempool {
 public:
  explicit Mempool(std::size_t capacity = 100'000);

  /// Adds a transaction; returns false for duplicates or when full.
  bool add(Transaction tx);

  [[nodiscard]] bool contains(const crypto::Hash256& digest) const;
  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

  /// Pops up to `max_count` transactions, skipping (and discarding) any for
  /// which `already_committed` returns true.
  [[nodiscard]] std::vector<Transaction> pop_batch(
      std::size_t max_count,
      const std::function<bool(const crypto::Hash256&)>& already_committed);

  /// Drops a committed transaction if still queued (a backup clearing
  /// entries it saw in a block produced elsewhere).
  void remove(const crypto::Hash256& digest);

  void clear();

 private:
  std::size_t capacity_;
  std::deque<Transaction> queue_;
  std::unordered_set<crypto::Hash256> digests_;
};

}  // namespace gpbft::ledger
