#include "ledger/chain.hpp"

namespace gpbft::ledger {

Chain::Chain(Block genesis) {
  for (const Transaction& tx : genesis.transactions) {
    tx_index_[tx.digest()] = 0;
    if (tx.kind == TxKind::Config) latest_era_ = tx.era_config;
  }
  blocks_.push_back(std::move(genesis));
}

Result<void> Chain::validate_next(const Block& block) const {
  const Block& tip_block = blocks_.back();
  if (block.header.height != tip_block.header.height + 1) {
    return make_error("chain: height " + std::to_string(block.header.height) +
                      " does not extend tip " + std::to_string(tip_block.header.height));
  }
  if (block.header.prev_hash != tip_block.hash()) {
    return make_error("chain: previous-hash link broken at height " +
                      std::to_string(block.header.height));
  }
  if (block.header.merkle_root != block.compute_merkle_root()) {
    return make_error("chain: merkle root does not commit to the body");
  }
  return {};
}

Result<void> Chain::append(Block block) {
  if (auto valid = validate_next(block); !valid) return make_error(valid.error());
  const Height h = block.header.height;
  for (const Transaction& tx : block.transactions) {
    tx_index_[tx.digest()] = h;
    if (tx.kind == TxKind::Config) latest_era_ = tx.era_config;
  }
  blocks_.push_back(std::move(block));
  return {};
}

std::optional<ForkEvidence> Chain::observe_header(const BlockHeader& header) const {
  if (header.height >= blocks_.size()) return std::nullopt;  // not committed here yet
  Block observed;
  observed.header = header;
  const crypto::Hash256 observed_hash = observed.hash();
  const crypto::Hash256 committed_hash = blocks_[header.height].hash();
  if (observed_hash == committed_hash) return std::nullopt;
  return ForkEvidence{header.height, committed_hash, observed_hash, header.producer};
}

std::optional<Height> Chain::find_transaction(const crypto::Hash256& digest) const {
  const auto it = tx_index_.find(digest);
  if (it == tx_index_.end()) return std::nullopt;
  return it->second;
}

EraConfig Chain::current_era_config() const { return latest_era_; }

}  // namespace gpbft::ledger
