#include "ledger/mempool.hpp"

#include <algorithm>

namespace gpbft::ledger {

Mempool::Mempool(std::size_t capacity) : capacity_(capacity) {}

bool Mempool::add(Transaction tx) {
  if (queue_.size() >= capacity_) return false;
  const crypto::Hash256 digest = tx.digest();
  if (digests_.contains(digest)) return false;
  digests_.insert(digest);
  queue_.push_back(std::move(tx));
  return true;
}

bool Mempool::contains(const crypto::Hash256& digest) const { return digests_.contains(digest); }

std::vector<Transaction> Mempool::pop_batch(
    std::size_t max_count, const std::function<bool(const crypto::Hash256&)>& already_committed) {
  std::vector<Transaction> batch;
  while (batch.size() < max_count && !queue_.empty()) {
    Transaction tx = std::move(queue_.front());
    queue_.pop_front();
    const crypto::Hash256 digest = tx.digest();
    digests_.erase(digest);
    if (already_committed && already_committed(digest)) continue;
    batch.push_back(std::move(tx));
  }
  return batch;
}

void Mempool::remove(const crypto::Hash256& digest) {
  if (!digests_.contains(digest)) return;
  digests_.erase(digest);
  const auto it = std::find_if(queue_.begin(), queue_.end(), [&digest](const Transaction& tx) {
    return tx.digest() == digest;
  });
  if (it != queue_.end()) queue_.erase(it);
}

void Mempool::clear() {
  queue_.clear();
  digests_.clear();
}

}  // namespace gpbft::ledger
