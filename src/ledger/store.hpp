// Chain persistence.
//
// Serializes a chain to a single file and restores it with full
// re-validation (hash linkage, Merkle roots), so a node can stop and
// resume without replaying consensus — the operational feature an
// IoT-blockchain deployment needs for devices that reboot.
//
// File format (little-endian, serde framing):
//   magic "GPBFTCHN" | format version u32 | block count varint |
//   length-prefixed encoded blocks, genesis first |
//   sha256 over everything before it (integrity tail)
#pragma once

#include <string>

#include "common/result.hpp"
#include "ledger/chain.hpp"

namespace gpbft::ledger {

inline constexpr std::uint32_t kChainFileVersion = 1;

/// Serializes `chain` (genesis..tip) into an in-memory image.
[[nodiscard]] Bytes serialize_chain(const Chain& chain);

/// Parses and re-validates an image produced by serialize_chain. Errors on
/// bad magic/version, a corrupted integrity tail, or any block that fails
/// chain validation.
[[nodiscard]] Result<Chain> deserialize_chain(BytesView image);

/// Writes the chain image to `path` (atomically via a temp file + rename).
[[nodiscard]] Result<void> save_chain(const Chain& chain, const std::string& path);

/// Loads and validates a chain from `path`.
[[nodiscard]] Result<Chain> load_chain(const std::string& path);

}  // namespace gpbft::ledger
