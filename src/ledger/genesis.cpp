#include "ledger/genesis.hpp"

#include <algorithm>

#include "geo/geohash.hpp"

namespace gpbft::ledger {

bool AdmittancePolicy::blacklisted(NodeId id) const {
  return std::find(blacklist.begin(), blacklist.end(), id) != blacklist.end();
}

bool AdmittancePolicy::whitelisted(NodeId id) const {
  return std::find(whitelist.begin(), whitelist.end(), id) != whitelist.end();
}

Block make_genesis_block(const GenesisConfig& config) {
  EraConfig era0;
  era0.era = 0;
  era0.endorsers.reserve(config.initial_endorsers.size());
  era0.cells.reserve(config.initial_endorsers.size());
  for (const EndorserInfo& info : config.initial_endorsers) {
    era0.endorsers.push_back(info.id);
    // The genesis block records each core device's location (§III-C).
    era0.cells.push_back(geo::geohash_encode(info.location));
  }

  // The genesis configuration transaction is "sent" by the null system node.
  geo::GeoReport origin;
  Transaction config_tx = make_config_tx(NodeId{0}, 0, era0, origin);

  Block genesis;
  genesis.transactions.push_back(std::move(config_tx));
  genesis.header.height = 0;
  genesis.header.prev_hash = crypto::Hash256{};  // all-zero: no parent
  genesis.header.merkle_root = genesis.compute_merkle_root();
  genesis.header.era = 0;
  genesis.header.view = 0;
  genesis.header.seq = 0;
  genesis.header.timestamp = TimePoint{0};
  genesis.header.producer = NodeId{0};
  return genesis;
}

}  // namespace gpbft::ledger
