#include "ledger/transaction.hpp"

#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace gpbft::ledger {

Bytes Transaction::encode() const {
  serde::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(sender.value);
  w.raw(sender_address.view());
  w.u64(request_id);
  w.bytes(BytesView(payload.data(), payload.size()));
  w.u64(fee);
  w.u64(era_config.era);
  w.varint(era_config.endorsers.size());
  for (NodeId id : era_config.endorsers) w.u64(id.value);
  w.varint(era_config.cells.size());
  for (const std::string& cell : era_config.cells) w.string(cell);
  // Geographic information trailer, at the end of the body (§III-B2).
  w.f64(geo.point.longitude);
  w.f64(geo.point.latitude);
  w.i64(geo.timestamp.ns);
  // Optional reputation tail: only written when non-empty, so runs with
  // reputation disabled encode byte-identically to the legacy format.
  if (!era_config.scores.empty()) {
    w.varint(era_config.scores.size());
    for (const ReputationScore& s : era_config.scores) {
      w.u64(s.device.value);
      w.i64(s.score);
      w.u8(s.quarantined ? 1 : 0);
    }
  }
  return w.take();
}

Result<Transaction> Transaction::decode(BytesView data) {
  serde::Reader r(data);
  Transaction tx;

  auto kind = r.u8();
  if (!kind) return make_error(kind.error());
  if (kind.value() > 1) return make_error("transaction: unknown kind");
  tx.kind = static_cast<TxKind>(kind.value());

  auto sender = r.u64();
  if (!sender) return make_error(sender.error());
  tx.sender = NodeId{sender.value()};

  auto addr = r.raw(20);
  if (!addr) return make_error(addr.error());
  std::copy(addr.value().begin(), addr.value().end(), tx.sender_address.bytes.begin());

  auto request_id = r.u64();
  if (!request_id) return make_error(request_id.error());
  tx.request_id = request_id.value();

  auto payload = r.bytes();
  if (!payload) return make_error(payload.error());
  tx.payload = std::move(payload.value());

  auto fee = r.u64();
  if (!fee) return make_error(fee.error());
  tx.fee = fee.value();

  auto era = r.u64();
  if (!era) return make_error(era.error());
  tx.era_config.era = era.value();

  auto count = r.varint();
  if (!count) return make_error(count.error());
  if (count.value() > 100'000) return make_error("transaction: roster too large");
  if (count.value() > r.remaining()) return make_error("transaction: roster exceeds payload");
  tx.era_config.endorsers.reserve(static_cast<std::size_t>(count.value()));
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto id = r.u64();
    if (!id) return make_error(id.error());
    tx.era_config.endorsers.push_back(NodeId{id.value()});
  }

  auto cell_count = r.varint();
  if (!cell_count) return make_error(cell_count.error());
  if (cell_count.value() > 100'000) return make_error("transaction: too many cells");
  for (std::uint64_t i = 0; i < cell_count.value(); ++i) {
    auto cell = r.string(64);
    if (!cell) return make_error(cell.error());
    tx.era_config.cells.push_back(std::move(cell.value()));
  }

  auto lng = r.f64();
  if (!lng) return make_error(lng.error());
  auto lat = r.f64();
  if (!lat) return make_error(lat.error());
  auto ts = r.i64();
  if (!ts) return make_error(ts.error());
  tx.geo.point = geo::GeoPoint{lat.value(), lng.value()};
  tx.geo.timestamp = TimePoint{ts.value()};

  // The reputation tail is present only when bytes remain past the trailer.
  if (!r.exhausted()) {
    auto score_count = r.varint();
    if (!score_count) return make_error(score_count.error());
    if (score_count.value() == 0) return make_error("transaction: empty reputation tail");
    if (score_count.value() > 100'000) return make_error("transaction: too many scores");
    if (score_count.value() > r.remaining()) {
      return make_error("transaction: score count exceeds payload");
    }
    tx.era_config.scores.reserve(static_cast<std::size_t>(score_count.value()));
    for (std::uint64_t i = 0; i < score_count.value(); ++i) {
      auto device = r.u64();
      if (!device) return make_error(device.error());
      auto score = r.i64();
      if (!score) return make_error(score.error());
      auto quarantined = r.u8();
      if (!quarantined) return make_error(quarantined.error());
      if (quarantined.value() > 1) return make_error("transaction: bad quarantine flag");
      tx.era_config.scores.push_back(
          ReputationScore{NodeId{device.value()}, score.value(), quarantined.value() == 1});
    }
  }

  if (!r.exhausted()) return make_error("transaction: trailing bytes");
  return tx;
}

crypto::Hash256 Transaction::digest() const {
  const Bytes encoded = encode();
  return crypto::sha256(BytesView(encoded.data(), encoded.size()));
}

Transaction make_normal_tx(NodeId sender, RequestId request_id, Bytes payload, Amount fee,
                           const geo::GeoReport& geo) {
  Transaction tx;
  tx.kind = TxKind::Normal;
  tx.sender = sender;
  tx.sender_address = crypto::address_for_node(sender);
  tx.request_id = request_id;
  tx.payload = std::move(payload);
  tx.fee = fee;
  tx.geo = geo;
  return tx;
}

Transaction make_geo_report_tx(NodeId sender, RequestId request_id, const geo::GeoReport& geo) {
  return make_normal_tx(sender, request_id, Bytes{}, 0, geo);
}

bool is_geo_report_tx(const Transaction& tx) {
  return tx.kind == TxKind::Normal && tx.payload.empty() && tx.fee == 0;
}

Transaction make_config_tx(NodeId sender, RequestId request_id, EraConfig config,
                           const geo::GeoReport& geo) {
  Transaction tx;
  tx.kind = TxKind::Config;
  tx.sender = sender;
  tx.sender_address = crypto::address_for_node(sender);
  tx.request_id = request_id;
  tx.era_config = std::move(config);
  tx.geo = geo;
  return tx;
}

}  // namespace gpbft::ledger
