#include "ledger/store.hpp"

#include <cstdio>

#include "crypto/sha256.hpp"
#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace gpbft::ledger {

namespace {
constexpr char kMagic[] = "GPBFTCHN";
constexpr std::size_t kMagicLen = 8;
}  // namespace

Bytes serialize_chain(const Chain& chain) {
  serde::Writer w;
  w.raw(BytesView(reinterpret_cast<const std::uint8_t*>(kMagic), kMagicLen));
  w.u32(kChainFileVersion);
  w.varint(chain.size());
  for (Height h = 0; h <= chain.height(); ++h) {
    const Bytes block = chain.at(h).encode();
    w.bytes(BytesView(block.data(), block.size()));
  }
  const crypto::Hash256 digest =
      crypto::sha256(BytesView(w.buffer().data(), w.buffer().size()));
  w.raw(digest.view());
  return w.take();
}

Result<Chain> deserialize_chain(BytesView image) {
  if (image.size() < kMagicLen + 4 + 32) return make_error("chain file: truncated");

  // Integrity tail first: sha256 over everything before the final 32 bytes.
  const BytesView body(image.data(), image.size() - 32);
  const crypto::Hash256 expected = crypto::sha256(body);
  crypto::Hash256 stored;
  std::copy(image.end() - 32, image.end(), stored.bytes.begin());
  if (expected != stored) return make_error("chain file: integrity check failed");

  serde::Reader r(body);
  auto magic = r.raw(kMagicLen);
  if (!magic) return make_error(magic.error());
  if (std::string(magic.value().begin(), magic.value().end()) != kMagic) {
    return make_error("chain file: bad magic");
  }
  auto version = r.u32();
  if (!version) return make_error(version.error());
  if (version.value() != kChainFileVersion) {
    return make_error("chain file: unsupported version " + std::to_string(version.value()));
  }

  auto count = r.varint();
  if (!count) return make_error(count.error());
  if (count.value() == 0) return make_error("chain file: no blocks");
  if (count.value() > 10'000'000) return make_error("chain file: implausible block count");

  auto genesis_bytes = r.bytes();
  if (!genesis_bytes) return make_error(genesis_bytes.error());
  auto genesis =
      Block::decode(BytesView(genesis_bytes.value().data(), genesis_bytes.value().size()));
  if (!genesis) return make_error(genesis.error());
  if (genesis.value().header.height != 0) return make_error("chain file: genesis height != 0");

  Chain chain(std::move(genesis.value()));
  for (std::uint64_t i = 1; i < count.value(); ++i) {
    auto block_bytes = r.bytes();
    if (!block_bytes) return make_error(block_bytes.error());
    auto block =
        Block::decode(BytesView(block_bytes.value().data(), block_bytes.value().size()));
    if (!block) return make_error(block.error());
    if (auto appended = chain.append(std::move(block.value())); !appended) {
      return make_error("chain file: block " + std::to_string(i) +
                        " failed validation: " + appended.error());
    }
  }
  if (!r.exhausted()) return make_error("chain file: trailing bytes");
  return chain;
}

Result<void> save_chain(const Chain& chain, const std::string& path) {
  const Bytes image = serialize_chain(chain);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return make_error("chain file: cannot open " + tmp);
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != image.size() || !flushed) {
    std::remove(tmp.c_str());
    return make_error("chain file: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return make_error("chain file: rename to " + path + " failed");
  }
  return {};
}

Result<Chain> load_chain(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return make_error("chain file: cannot open " + path);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(file);
    return make_error("chain file: cannot stat " + path);
  }
  Bytes image(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(image.data(), 1, image.size(), file);
  std::fclose(file);
  if (read != image.size()) return make_error("chain file: short read from " + path);
  return deserialize_chain(BytesView(image.data(), image.size()));
}

}  // namespace gpbft::ledger
