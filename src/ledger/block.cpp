#include "ledger/block.hpp"

#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace gpbft::ledger {

Bytes BlockHeader::encode() const {
  serde::Writer w;
  w.u64(height);
  w.raw(prev_hash.view());
  w.raw(merkle_root.view());
  w.u64(era);
  w.u64(view);
  w.u64(seq);
  w.i64(timestamp.ns);
  w.u64(producer.value);
  return w.take();
}

Result<BlockHeader> BlockHeader::decode(BytesView data) {
  serde::Reader r(data);
  BlockHeader h;

  auto height = r.u64();
  if (!height) return make_error(height.error());
  h.height = height.value();

  auto prev = r.raw(32);
  if (!prev) return make_error(prev.error());
  std::copy(prev.value().begin(), prev.value().end(), h.prev_hash.bytes.begin());

  auto root = r.raw(32);
  if (!root) return make_error(root.error());
  std::copy(root.value().begin(), root.value().end(), h.merkle_root.bytes.begin());

  auto era = r.u64();
  if (!era) return make_error(era.error());
  h.era = era.value();

  auto view = r.u64();
  if (!view) return make_error(view.error());
  h.view = view.value();

  auto seq = r.u64();
  if (!seq) return make_error(seq.error());
  h.seq = seq.value();

  auto ts = r.i64();
  if (!ts) return make_error(ts.error());
  h.timestamp = TimePoint{ts.value()};

  auto producer = r.u64();
  if (!producer) return make_error(producer.error());
  h.producer = NodeId{producer.value()};

  if (!r.exhausted()) return make_error("block header: trailing bytes");
  return h;
}

Bytes Block::encode() const {
  serde::Writer w;
  const Bytes header_bytes = header.encode();
  w.bytes(BytesView(header_bytes.data(), header_bytes.size()));
  w.varint(transactions.size());
  for (const Transaction& tx : transactions) {
    const Bytes tx_bytes = tx.encode();
    w.bytes(BytesView(tx_bytes.data(), tx_bytes.size()));
  }
  return w.take();
}

Result<Block> Block::decode(BytesView data) {
  serde::Reader r(data);
  Block block;

  auto header_bytes = r.bytes();
  if (!header_bytes) return make_error(header_bytes.error());
  auto header = BlockHeader::decode(
      BytesView(header_bytes.value().data(), header_bytes.value().size()));
  if (!header) return make_error(header.error());
  block.header = header.value();

  auto count = r.varint();
  if (!count) return make_error(count.error());
  if (count.value() > 1'000'000) return make_error("block: transaction count too large");
  // Every transaction costs at least one byte on the wire: a declared count
  // beyond the remaining buffer is forged, and must be rejected before it
  // sizes an allocation.
  if (count.value() > r.remaining()) return make_error("block: transaction count exceeds payload");
  block.transactions.reserve(static_cast<std::size_t>(count.value()));
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto tx_bytes = r.bytes();
    if (!tx_bytes) return make_error(tx_bytes.error());
    auto tx = Transaction::decode(BytesView(tx_bytes.value().data(), tx_bytes.value().size()));
    if (!tx) return make_error(tx.error());
    block.transactions.push_back(std::move(tx.value()));
  }

  if (!r.exhausted()) return make_error("block: trailing bytes");
  return block;
}

crypto::Hash256 Block::hash() const {
  const Bytes encoded = header.encode();
  return crypto::sha256(BytesView(encoded.data(), encoded.size()));
}

crypto::Hash256 Block::compute_merkle_root() const {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(transactions.size());
  for (const Transaction& tx : transactions) leaves.push_back(tx.digest());
  return crypto::MerkleTree::compute_root(leaves);
}

Amount Block::total_fees() const {
  Amount total = 0;
  for (const Transaction& tx : transactions) total += tx.fee;
  return total;
}

Block build_block(const BlockHeader& prev, std::vector<Transaction> transactions, EraId era,
                  ViewId view, SeqNum seq, TimePoint timestamp, NodeId producer) {
  Block block;
  block.transactions = std::move(transactions);
  block.header.height = prev.height + 1;

  // prev.hash(): hash of the previous header.
  Block prev_block;
  prev_block.header = prev;
  block.header.prev_hash = prev_block.hash();

  block.header.merkle_root = block.compute_merkle_root();
  block.header.era = era;
  block.header.view = view;
  block.header.seq = seq;
  block.header.timestamp = timestamp;
  block.header.producer = producer;
  return block;
}

}  // namespace gpbft::ledger
