// Chain store with validation and fork detection.
//
// Each replica keeps its own Chain. append() enforces linkage (height,
// previous-hash, Merkle root); observe_header() additionally watches for a
// *different* block at an already-committed height — the fork evidence the
// incentive mechanism uses to expel a misbehaving producer (§III-B3/5).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "ledger/block.hpp"

namespace gpbft::ledger {

/// Evidence that a producer signed two different blocks for one height.
struct ForkEvidence {
  Height height{0};
  crypto::Hash256 committed;
  crypto::Hash256 conflicting;
  NodeId producer;  // producer of the conflicting block
};

class Chain {
 public:
  /// Starts from a genesis block (height 0).
  explicit Chain(Block genesis);

  /// Validates and appends. Errors on wrong height, broken prev-hash link,
  /// or a Merkle root that does not match the body.
  [[nodiscard]] Result<void> append(Block block);

  /// Validation without mutation (what append checks).
  [[nodiscard]] Result<void> validate_next(const Block& block) const;

  /// Checks a header observed from a peer; returns fork evidence when it
  /// conflicts with a block this chain already committed at that height.
  [[nodiscard]] std::optional<ForkEvidence> observe_header(const BlockHeader& header) const;

  [[nodiscard]] Height height() const { return blocks_.back().header.height; }
  [[nodiscard]] const Block& tip() const { return blocks_.back(); }
  [[nodiscard]] const Block& at(Height h) const { return blocks_.at(h); }
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

  /// Looks a transaction up by digest (linear in chain length per block
  /// index bucket; fine at simulation scale).
  [[nodiscard]] std::optional<Height> find_transaction(const crypto::Hash256& digest) const;

  /// Latest era configuration recorded on chain (from config transactions).
  [[nodiscard]] EraConfig current_era_config() const;

 private:
  std::vector<Block> blocks_;
  std::unordered_map<crypto::Hash256, Height> tx_index_;
  EraConfig latest_era_;
};

}  // namespace gpbft::ledger
