// Transactions (§III-B2 of the paper).
//
// Two kinds exist:
//  * Normal transactions change application state (sensor readings, payment
//    records, RFID signal strength, ...). Clients and endorsers propose them.
//  * Configuration transactions modify chain configuration — adding new or
//    removing obsolete endorsers at an era switch. Only current endorsers
//    propose them, and they carry the next era's roster.
//
// Both kinds carry the proposer's geographic information <longitude,
// latitude, timestamp> at the end of the transaction body, exactly as the
// paper specifies; those trailers are one source of reports for the
// election table.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "crypto/address.hpp"
#include "crypto/sha256.hpp"
#include "geo/geopoint.hpp"

namespace gpbft::ledger {

enum class TxKind : std::uint8_t { Normal = 0, Config = 1 };

/// Era-switch payload of a configuration transaction: the full roster of the
/// next era (keeping the roster explicit makes era switches self-contained
/// on chain, so a node can recover membership from blocks alone).
///
/// `cells` records each endorser's *enrolled* geographic cell (geohash) —
/// the location it was elected at. The genesis block carries the core
/// devices' locations this way (§III-C), and every later configuration
/// transaction carries the cells of its roster, so re-authentication can
/// demote an endorser whose reports no longer match its enrolled location
/// even if the move happened before the current lookback window.
/// One device's reputation state as persisted inside a configuration
/// transaction (milli fixed-point score plus the quarantine latch). The
/// full ledger — not just the seated roster — rides along, so a restarted
/// endorser rebuilds the same scores, including quarantined attackers.
struct ReputationScore {
  NodeId device;
  std::int64_t score{0};
  bool quarantined{false};

  friend bool operator==(const ReputationScore&, const ReputationScore&) = default;
};

struct EraConfig {
  EraId era{0};
  std::vector<NodeId> endorsers;
  std::vector<std::string> cells;  // parallel to `endorsers`; may be empty
  /// Reputation snapshot, ascending by device id. Empty when reputation is
  /// disabled — and then not encoded at all, keeping the wire format (and
  /// every golden hash) identical to the pre-reputation one.
  std::vector<ReputationScore> scores;

  friend bool operator==(const EraConfig&, const EraConfig&) = default;
};

struct Transaction {
  TxKind kind{TxKind::Normal};
  NodeId sender;
  crypto::Address sender_address;
  RequestId request_id{0};
  Bytes payload;          // application data (normal) or empty (config)
  Amount fee{0};
  EraConfig era_config;   // meaningful only when kind == Config

  // Geographic information trailer (§III-B2): appended to the body.
  geo::GeoReport geo;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Transaction> decode(BytesView data);

  /// SHA-256 over the encoding; identifies the transaction everywhere
  /// (mempool dedup, PBFT request digests, Merkle leaves).
  [[nodiscard]] crypto::Hash256 digest() const;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Convenience builders used by workloads, tests and examples.
[[nodiscard]] Transaction make_normal_tx(NodeId sender, RequestId request_id, Bytes payload,
                                         Amount fee, const geo::GeoReport& geo);
[[nodiscard]] Transaction make_config_tx(NodeId sender, RequestId request_id, EraConfig config,
                                         const geo::GeoReport& geo);

/// A pure location-report transaction: normal kind, empty payload, zero fee,
/// only the geographic trailer matters. Used when the deployment records geo
/// reports on chain (the paper's G(v, t) is chain-based, §III-D), making the
/// election table reconstructible from blocks alone.
[[nodiscard]] Transaction make_geo_report_tx(NodeId sender, RequestId request_id,
                                             const geo::GeoReport& geo);

/// True when `tx` is a location-report transaction.
[[nodiscard]] bool is_geo_report_tx(const Transaction& tx);

}  // namespace gpbft::ledger
