// Simulated PoW miner (see pow_chain.hpp for the modeling argument).
//
// Each miner mines on the current best tip: block discovery is a Poisson
// process with rate hashrate/difficulty, so the miner draws an exponential
// solve time on the simulated clock and re-arms whenever the tip changes
// (memorylessness makes the re-arm exact). Found blocks gossip to every
// peer; receivers adopt by heaviest-chain fork choice, which makes forks
// and stale blocks observable under network latency.
//
// Energy accounting: hashes_computed() integrates hashrate over the time
// actually spent mining — the computing-overhead number Table IV contrasts
// with (G-)PBFT's.
#pragma once

#include <functional>
#include <memory>

#include "ledger/mempool.hpp"
#include "net/network.hpp"
#include "pow/pow_chain.hpp"

namespace gpbft::pow {

struct MinerConfig {
  /// Hash evaluations per simulated second (IoT-class device: modest).
  double hashrate{1e6};
  /// Expected hashes per block across the *whole network* is `difficulty`;
  /// with m equal miners a block lands every difficulty/(m*hashrate) s.
  std::uint64_t difficulty{60'000'000};
  std::size_t max_batch_size{32};
  /// Depth at which a transaction counts as confirmed (6 in Bitcoin lore).
  Height confirmation_depth{3};
  /// Scaled-down target actually ground/verified (see mine_block docs).
  std::uint64_t proof_difficulty{PowChain::kDefaultProofDifficulty};
  /// Optional difficulty retargeting rule (consensus-critical: all miners
  /// must share it). Disabled by default: fixed genesis difficulty.
  std::optional<RetargetConfig> retarget{};
};

/// Message type for gossiped PoW blocks (disjoint from the PBFT range).
inline constexpr net::MessageType kPowBlock = 40;
/// Parent-fetch sync: a 32-byte block hash the sender is missing. Blocks
/// are only announced when mined, so a miner that was crashed or
/// partitioned would otherwise buffer descendants as orphans forever; on
/// receiving an orphan it instead asks the announcer for the missing
/// parent, walking back until the chains connect.
inline constexpr net::MessageType kPowBlockRequest = 42;
/// Clients submit transactions with the PBFT ClientRequest type.

class Miner : public net::INetNode {
 public:
  /// (digest, confirmation latency) when a transaction first reaches the
  /// configured confirmation depth on this miner's best chain.
  using ConfirmedCallback = std::function<void(const crypto::Hash256&, Duration)>;
  /// Durability hook, fired whenever the best tip advances; the deployment
  /// layer wires it to the node's simulated disk (see pow_store.hpp).
  using PersistCallback = std::function<void(const PowChain&)>;

  Miner(NodeId id, std::vector<NodeId> peers, PowBlock genesis, MinerConfig config,
        net::Network& network);

  /// Attaches and starts mining.
  void start();
  void stop();

  // --- INetNode ---------------------------------------------------------------
  [[nodiscard]] NodeId id() const override { return id_; }
  void handle(const net::Envelope& envelope) override;

  /// Submits a transaction directly (the harness's client path).
  void submit(ledger::Transaction tx);

  /// Replays a persisted best chain (genesis first) into the block tree
  /// before start(). Every block re-passes proof-of-work and linkage
  /// validation; anything invalid is dropped, so a corrupt-but-well-framed
  /// image degrades to a shorter chain rather than poisoning the tree.
  void restore_chain(const std::vector<PowBlock>& blocks);

  // --- introspection ------------------------------------------------------------
  [[nodiscard]] const PowChain& chain() const { return chain_; }
  [[nodiscard]] double hashes_computed() const { return hashes_computed_; }
  [[nodiscard]] std::uint64_t blocks_mined() const { return blocks_mined_; }
  void set_confirmed_callback(ConfirmedCallback cb) { confirmed_cb_ = std::move(cb); }
  void set_persist_callback(PersistCallback cb) { persist_cb_ = std::move(cb); }

 private:
  void arm_mining();
  void maybe_persist();
  void on_block_found(std::uint64_t attempt);
  void on_block_received(PowBlock block, NodeId from);
  void on_block_requested(const crypto::Hash256& block_hash, NodeId requester);
  void account_mining_time();
  void check_confirmations();
  void sync_mempool_with_best_chain();

  NodeId id_;
  std::vector<NodeId> peers_;
  MinerConfig config_;
  net::Network& network_;
  PowChain chain_;
  ledger::Mempool mempool_;

  bool running_{false};
  std::uint64_t attempt_counter_{0};  // invalidates superseded solve events
  TimePoint mining_since_{};
  double hashes_computed_{0};
  std::uint64_t blocks_mined_{0};

  // Pending confirmation watches: digest -> submission time.
  std::unordered_map<crypto::Hash256, TimePoint> watched_;
  ConfirmedCallback confirmed_cb_;
  PersistCallback persist_cb_;
  RequestId next_request_{1};

  /// Lifetime token: solve events scheduled on the simulator cannot be
  /// cancelled, so each holds a weak_ptr and no-ops once the miner object
  /// is destroyed (crash–restart rebuilds miners from disk).
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
};

}  // namespace gpbft::pow
