// Proof-of-Work chain substrate.
//
// The paper repeatedly contrasts G-PBFT with PoW ("most IoT-blockchain
// systems take PoW as their underlying consensus... it is hard for IoT
// devices to conduct expensive mining work", §I; Table IV scores PoW low
// speed / high computing overhead). To *measure* those claims rather than
// quote them, this module implements a Nakamoto-style chain:
//
//  * blocks carry a nonce and a difficulty target; the header hash must
//    fall below the target;
//  * fork choice is heaviest chain (sum of per-block work), tracked over a
//    block tree so competing tips and orphans are first-class;
//  * confirmation is probabilistic: a transaction counts as final once its
//    block is `confirmation_depth` below the best tip.
//
// Mining itself is simulated on the discrete-event clock (DESIGN.md §1):
// finding a block is a Poisson process, so each miner draws Exp(difficulty
// / hashrate) for its next solve and re-arms when the tip changes — the
// memorylessness of the exponential makes re-arming statistically exact.
// The hashes a miner *would* have computed accumulate as the energy /
// computing-overhead metric of Table IV.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "ledger/transaction.hpp"

namespace gpbft::pow {

/// Work target: a block's hash (interpreted big-endian) must be strictly
/// below `target_from_difficulty(difficulty)`. Difficulty d means on
/// average d hash evaluations per block.
struct PowBlockHeader {
  Height height{0};
  crypto::Hash256 prev_hash;
  crypto::Hash256 merkle_root;
  std::uint64_t difficulty{1};
  std::uint64_t nonce{0};
  TimePoint timestamp;
  NodeId miner;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<PowBlockHeader> decode(BytesView data);

  friend bool operator==(const PowBlockHeader&, const PowBlockHeader&) = default;
};

struct PowBlock {
  PowBlockHeader header;
  std::vector<ledger::Transaction> transactions;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<PowBlock> decode(BytesView data);
  [[nodiscard]] crypto::Hash256 hash() const;
  [[nodiscard]] crypto::Hash256 compute_merkle_root() const;

  friend bool operator==(const PowBlock&, const PowBlock&) = default;
};

/// True when `hash` satisfies `difficulty` (expected `difficulty` trials).
[[nodiscard]] bool hash_meets_difficulty(const crypto::Hash256& hash, std::uint64_t difficulty);

/// Grinds nonces until the header's hash meets `proof_difficulty`.
///
/// Two difficulties exist deliberately: header.difficulty is the *consensus*
/// difficulty — it drives the simulated solve times and the fork-choice
/// work sum (millions of hashes per block, paid on the simulated clock).
/// `proof_difficulty` is the scaled-down target actually ground and
/// verified in wall-clock time (~1 k hashes), so validation exercises a
/// genuine proof-of-work check without re-doing the full grind the
/// simulation already charged for. DESIGN.md documents the substitution.
[[nodiscard]] PowBlock mine_block(PowBlock block, std::uint64_t proof_difficulty,
                                  std::uint64_t start_nonce = 0);

/// Difficulty retargeting: every `interval` blocks the difficulty is
/// rescaled so blocks keep landing `target_block_time` apart as the fleet's
/// total hashrate changes (devices join, crash, or are repurposed — churn
/// is the norm in IoT deployments). The per-retarget factor is clamped to
/// [1/max_factor, max_factor], Bitcoin-style.
struct RetargetConfig {
  Height interval{16};
  Duration target_block_time = Duration::seconds(10);
  double max_factor{4.0};
};

/// Block tree with heaviest-chain fork choice.
class PowChain {
 public:
  explicit PowChain(PowBlock genesis, std::uint64_t proof_difficulty = kDefaultProofDifficulty,
                    std::optional<RetargetConfig> retarget = std::nullopt);

  static constexpr std::uint64_t kDefaultProofDifficulty = 1024;

  /// Validates (linkage to a known block, merkle root, proof-of-work) and
  /// inserts. Returns whether the *best tip changed* (a reorg or extension)
  /// — the signal for miners to restart. Unknown parents are buffered as
  /// orphans and connected when the parent arrives.
  [[nodiscard]] Result<bool> add_block(PowBlock block);

  [[nodiscard]] const PowBlock& tip() const;
  [[nodiscard]] crypto::Hash256 tip_hash() const { return best_tip_; }
  [[nodiscard]] Height tip_height() const;

  /// Total accumulated work (sum of difficulty) on the best chain.
  [[nodiscard]] std::uint64_t best_work() const;

  /// Blocks on the best chain, genesis..tip.
  [[nodiscard]] std::vector<PowBlock> best_chain() const;

  /// Depth of the block containing `digest` below the best tip (0 = in the
  /// tip); nullopt when the transaction is not on the best chain.
  [[nodiscard]] std::optional<Height> confirmation_depth(const crypto::Hash256& digest) const;

  /// Consensus difficulty required of the block that extends `parent`.
  /// Without retargeting this is the parent's difficulty; with it, the
  /// retarget rule applies at each interval boundary. Unknown parents get
  /// the genesis difficulty.
  [[nodiscard]] std::uint64_t next_difficulty(const crypto::Hash256& parent) const;

  /// Best-chain delta of the most recent add_block() call: hashes of blocks
  /// that joined the best chain (ancestor→tip order) and of blocks that
  /// left it (tip→ancestor order). Both are empty when the tip did not
  /// move. Powers the miners' reorg-aware mempool maintenance: connected
  /// transactions leave the mempool, disconnected ones are resurrected
  /// unless the new branch reconfirmed them.
  [[nodiscard]] const std::vector<crypto::Hash256>& last_connected() const {
    return last_connected_;
  }
  [[nodiscard]] const std::vector<crypto::Hash256>& last_disconnected() const {
    return last_disconnected_;
  }

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  /// The connected block with `block_hash`, or nullptr (orphans and unknown
  /// hashes are not served). Powers the parent-fetch sync path in Miner.
  [[nodiscard]] const PowBlock* find_block(const crypto::Hash256& block_hash) const;
  /// Blocks known but not on the best chain (stale/orphaned work).
  [[nodiscard]] std::size_t stale_count() const;
  [[nodiscard]] std::size_t pending_orphans() const { return orphans_.size(); }
  [[nodiscard]] bool contains(const crypto::Hash256& block_hash) const {
    return blocks_.contains(block_hash);
  }

 private:
  struct Entry {
    PowBlock block;
    std::uint64_t chain_work{0};  // cumulative from genesis
  };

  [[nodiscard]] Result<bool> connect(PowBlock block);
  void try_connect_orphans(const crypto::Hash256& parent);
  void reindex_best_chain();
  void record_reorg_deltas(const crypto::Hash256& old_tip);

  std::uint64_t proof_difficulty_;
  std::optional<RetargetConfig> retarget_;
  std::unordered_map<crypto::Hash256, Entry> blocks_;
  std::multimap<crypto::Hash256, PowBlock> orphans_;  // parent hash -> block
  crypto::Hash256 genesis_hash_;
  crypto::Hash256 best_tip_;
  std::vector<crypto::Hash256> last_connected_;
  std::vector<crypto::Hash256> last_disconnected_;
  // digest -> (block hash, height) for best-chain confirmation queries.
  std::unordered_map<crypto::Hash256, crypto::Hash256> tx_to_block_;
};

/// A deterministic PoW genesis block (consensus difficulty in the header,
/// ground against the proof difficulty).
[[nodiscard]] PowBlock make_pow_genesis(
    std::uint64_t difficulty, std::uint64_t proof_difficulty = PowChain::kDefaultProofDifficulty);

}  // namespace gpbft::pow
