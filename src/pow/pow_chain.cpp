#include "pow/pow_chain.hpp"

#include <algorithm>

#include "crypto/merkle.hpp"
#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace gpbft::pow {

// --- headers / blocks ---------------------------------------------------------

Bytes PowBlockHeader::encode() const {
  serde::Writer w;
  w.u64(height);
  w.raw(prev_hash.view());
  w.raw(merkle_root.view());
  w.u64(difficulty);
  w.u64(nonce);
  w.i64(timestamp.ns);
  w.u64(miner.value);
  return w.take();
}

Result<PowBlockHeader> PowBlockHeader::decode(BytesView data) {
  serde::Reader r(data);
  PowBlockHeader h;
  auto height = r.u64();
  if (!height) return make_error(height.error());
  h.height = height.value();
  auto prev = r.raw(32);
  if (!prev) return make_error(prev.error());
  std::copy(prev.value().begin(), prev.value().end(), h.prev_hash.bytes.begin());
  auto root = r.raw(32);
  if (!root) return make_error(root.error());
  std::copy(root.value().begin(), root.value().end(), h.merkle_root.bytes.begin());
  auto difficulty = r.u64();
  if (!difficulty) return make_error(difficulty.error());
  h.difficulty = difficulty.value();
  auto nonce = r.u64();
  if (!nonce) return make_error(nonce.error());
  h.nonce = nonce.value();
  auto ts = r.i64();
  if (!ts) return make_error(ts.error());
  h.timestamp = TimePoint{ts.value()};
  auto miner = r.u64();
  if (!miner) return make_error(miner.error());
  h.miner = NodeId{miner.value()};
  if (!r.exhausted()) return make_error("pow header: trailing bytes");
  return h;
}

Bytes PowBlock::encode() const {
  serde::Writer w;
  const Bytes header_bytes = header.encode();
  w.bytes(BytesView(header_bytes.data(), header_bytes.size()));
  w.varint(transactions.size());
  for (const ledger::Transaction& tx : transactions) {
    const Bytes tx_bytes = tx.encode();
    w.bytes(BytesView(tx_bytes.data(), tx_bytes.size()));
  }
  return w.take();
}

Result<PowBlock> PowBlock::decode(BytesView data) {
  serde::Reader r(data);
  PowBlock block;
  auto header_bytes = r.bytes();
  if (!header_bytes) return make_error(header_bytes.error());
  auto header = PowBlockHeader::decode(
      BytesView(header_bytes.value().data(), header_bytes.value().size()));
  if (!header) return make_error(header.error());
  block.header = header.value();
  auto count = r.varint();
  if (!count) return make_error(count.error());
  if (count.value() > 1'000'000) return make_error("pow block: too many transactions");
  if (count.value() > r.remaining()) {
    return make_error("pow block: transaction count exceeds payload");
  }
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto tx_bytes = r.bytes();
    if (!tx_bytes) return make_error(tx_bytes.error());
    auto tx = ledger::Transaction::decode(
        BytesView(tx_bytes.value().data(), tx_bytes.value().size()));
    if (!tx) return make_error(tx.error());
    block.transactions.push_back(std::move(tx.value()));
  }
  if (!r.exhausted()) return make_error("pow block: trailing bytes");
  return block;
}

crypto::Hash256 PowBlock::hash() const {
  const Bytes encoded = header.encode();
  return crypto::sha256d(BytesView(encoded.data(), encoded.size()));
}

crypto::Hash256 PowBlock::compute_merkle_root() const {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(transactions.size());
  for (const ledger::Transaction& tx : transactions) leaves.push_back(tx.digest());
  return crypto::MerkleTree::compute_root(leaves);
}

bool hash_meets_difficulty(const crypto::Hash256& hash, std::uint64_t difficulty) {
  if (difficulty <= 1) return true;
  // Interpret the first 8 digest bytes as a big-endian word; valid when it
  // falls below 2^64 / difficulty (expected `difficulty` trials per block).
  std::uint64_t word = 0;
  for (int i = 0; i < 8; ++i) word = (word << 8) | hash.bytes[static_cast<std::size_t>(i)];
  return word < (~0ull / difficulty);
}

PowBlock mine_block(PowBlock block, std::uint64_t proof_difficulty, std::uint64_t start_nonce) {
  block.header.merkle_root = block.compute_merkle_root();
  block.header.nonce = start_nonce;
  while (!hash_meets_difficulty(block.hash(), proof_difficulty)) {
    ++block.header.nonce;
  }
  return block;
}

PowBlock make_pow_genesis(std::uint64_t difficulty, std::uint64_t proof_difficulty) {
  PowBlock genesis;
  genesis.header.height = 0;
  genesis.header.prev_hash = crypto::Hash256{};
  genesis.header.difficulty = std::max<std::uint64_t>(1, difficulty);
  genesis.header.timestamp = TimePoint{0};
  genesis.header.miner = NodeId{0};
  return mine_block(std::move(genesis), proof_difficulty);
}

// --- chain ---------------------------------------------------------------------

PowChain::PowChain(PowBlock genesis, std::uint64_t proof_difficulty,
                   std::optional<RetargetConfig> retarget)
    : proof_difficulty_(proof_difficulty), retarget_(retarget) {
  const crypto::Hash256 hash = genesis.hash();
  genesis_hash_ = hash;
  best_tip_ = hash;
  Entry entry;
  entry.chain_work = genesis.header.difficulty;
  entry.block = std::move(genesis);
  blocks_.emplace(hash, std::move(entry));
  reindex_best_chain();
}

Result<bool> PowChain::add_block(PowBlock block) {
  last_connected_.clear();
  last_disconnected_.clear();
  const crypto::Hash256 hash = block.hash();
  if (blocks_.contains(hash)) return false;  // duplicate, tip unchanged

  if (!hash_meets_difficulty(hash, proof_difficulty_)) {
    return make_error("pow: header does not meet the proof target");
  }
  if (block.header.merkle_root != block.compute_merkle_root()) {
    return make_error("pow: merkle root does not commit to the body");
  }

  if (!blocks_.contains(block.header.prev_hash)) {
    // Parent unknown: buffer as orphan until it arrives (bounded).
    if (orphans_.size() < 1024) orphans_.emplace(block.header.prev_hash, std::move(block));
    return false;
  }

  const crypto::Hash256 tip_before = best_tip_;
  if (auto connected = connect(std::move(block)); !connected) {
    return make_error(connected.error());
  }
  // connect() recursively attaches buffered orphans; report whether the
  // best tip moved at all (the miners' restart signal).
  if (best_tip_ != tip_before) record_reorg_deltas(tip_before);
  return best_tip_ != tip_before;
}

void PowChain::record_reorg_deltas(const crypto::Hash256& old_tip) {
  // Walk both tips back to their common ancestor: blocks on the old branch
  // left the best chain, blocks on the new branch joined it. For a plain
  // extension the old tip IS the ancestor and only the connected leg fills.
  crypto::Hash256 leaving = old_tip;
  crypto::Hash256 joining = best_tip_;
  const auto height_of = [this](const crypto::Hash256& h) {
    return blocks_.at(h).block.header.height;
  };
  while (height_of(leaving) > height_of(joining)) {
    last_disconnected_.push_back(leaving);
    leaving = blocks_.at(leaving).block.header.prev_hash;
  }
  while (height_of(joining) > height_of(leaving)) {
    last_connected_.push_back(joining);
    joining = blocks_.at(joining).block.header.prev_hash;
  }
  while (leaving != joining) {
    last_disconnected_.push_back(leaving);
    leaving = blocks_.at(leaving).block.header.prev_hash;
    last_connected_.push_back(joining);
    joining = blocks_.at(joining).block.header.prev_hash;
  }
  std::reverse(last_connected_.begin(), last_connected_.end());
}

Result<bool> PowChain::connect(PowBlock block) {
  const auto parent_it = blocks_.find(block.header.prev_hash);
  if (block.header.height != parent_it->second.block.header.height + 1) {
    return make_error("pow: height does not extend parent");
  }
  if (block.header.difficulty != next_difficulty(block.header.prev_hash)) {
    return make_error("pow: wrong difficulty for height " +
                      std::to_string(block.header.height));
  }

  const crypto::Hash256 hash = block.hash();
  Entry entry;
  entry.chain_work = parent_it->second.chain_work + block.header.difficulty;
  entry.block = std::move(block);
  const std::uint64_t work = entry.chain_work;
  blocks_.emplace(hash, std::move(entry));

  if (work > blocks_.at(best_tip_).chain_work) {
    best_tip_ = hash;
    reindex_best_chain();
  }
  try_connect_orphans(hash);
  return true;
}

void PowChain::try_connect_orphans(const crypto::Hash256& parent) {
  auto [begin, end] = orphans_.equal_range(parent);
  std::vector<PowBlock> ready;
  for (auto it = begin; it != end; ++it) ready.push_back(std::move(it->second));
  orphans_.erase(begin, end);
  for (PowBlock& block : ready) (void)connect(std::move(block));
}

void PowChain::reindex_best_chain() {
  tx_to_block_.clear();
  crypto::Hash256 cursor = best_tip_;
  while (true) {
    const Entry& entry = blocks_.at(cursor);
    for (const ledger::Transaction& tx : entry.block.transactions) {
      tx_to_block_.emplace(tx.digest(), cursor);
    }
    if (cursor == genesis_hash_) break;
    cursor = entry.block.header.prev_hash;
  }
}

const PowBlock& PowChain::tip() const { return blocks_.at(best_tip_).block; }

Height PowChain::tip_height() const { return tip().header.height; }

std::uint64_t PowChain::best_work() const { return blocks_.at(best_tip_).chain_work; }

std::vector<PowBlock> PowChain::best_chain() const {
  std::vector<PowBlock> chain;
  crypto::Hash256 cursor = best_tip_;
  while (true) {
    const Entry& entry = blocks_.at(cursor);
    chain.push_back(entry.block);
    if (cursor == genesis_hash_) break;
    cursor = entry.block.header.prev_hash;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::optional<Height> PowChain::confirmation_depth(const crypto::Hash256& digest) const {
  const auto it = tx_to_block_.find(digest);
  if (it == tx_to_block_.end()) return std::nullopt;
  const Entry& entry = blocks_.at(it->second);
  return tip_height() - entry.block.header.height;
}

std::uint64_t PowChain::next_difficulty(const crypto::Hash256& parent) const {
  const auto parent_it = blocks_.find(parent);
  if (parent_it == blocks_.end()) return blocks_.at(genesis_hash_).block.header.difficulty;
  const PowBlock& parent_block = parent_it->second.block;

  if (!retarget_.has_value()) return parent_block.header.difficulty;
  const RetargetConfig& rule = *retarget_;
  const Height next_height = parent_block.header.height + 1;
  if (rule.interval == 0 || next_height % rule.interval != 0) {
    return parent_block.header.difficulty;
  }

  // Walk `interval` blocks up the parent's branch to find the window start.
  crypto::Hash256 cursor = parent;
  for (Height steps = 0; steps + 1 < rule.interval; ++steps) {
    const auto it = blocks_.find(cursor);
    if (it == blocks_.end() || cursor == genesis_hash_) break;
    cursor = it->second.block.header.prev_hash;
  }
  const auto start_it = blocks_.find(cursor);
  if (start_it == blocks_.end()) return parent_block.header.difficulty;

  const double actual_span =
      (parent_block.header.timestamp - start_it->second.block.header.timestamp).to_seconds();
  const double target_span =
      rule.target_block_time.to_seconds() * static_cast<double>(rule.interval - 1);
  if (actual_span <= 0.0 || target_span <= 0.0) return parent_block.header.difficulty;

  double factor = target_span / actual_span;  // too fast -> raise difficulty
  factor = std::min(rule.max_factor, std::max(1.0 / rule.max_factor, factor));
  const double scaled = static_cast<double>(parent_block.header.difficulty) * factor;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(scaled));
}

std::size_t PowChain::stale_count() const {
  return blocks_.size() - static_cast<std::size_t>(tip_height() + 1);
}

const PowBlock* PowChain::find_block(const crypto::Hash256& block_hash) const {
  const auto it = blocks_.find(block_hash);
  return it == blocks_.end() ? nullptr : &it->second.block;
}

}  // namespace gpbft::pow
