#include "pow/pow_store.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace gpbft::pow {

namespace {
constexpr char kMagic[] = "GPBFTPOW";
constexpr std::size_t kMagicLen = 8;
}  // namespace

Bytes serialize_pow_chain(const PowChain& chain) {
  const std::vector<PowBlock> best = chain.best_chain();
  serde::Writer w;
  w.raw(BytesView(reinterpret_cast<const std::uint8_t*>(kMagic), kMagicLen));
  w.u32(kPowChainFileVersion);
  w.varint(best.size());
  for (const PowBlock& block : best) {
    const Bytes encoded = block.encode();
    w.bytes(BytesView(encoded.data(), encoded.size()));
  }
  const crypto::Hash256 digest =
      crypto::sha256(BytesView(w.buffer().data(), w.buffer().size()));
  w.raw(digest.view());
  return w.take();
}

Result<std::vector<PowBlock>> deserialize_pow_chain(BytesView image) {
  if (image.size() < kMagicLen + 4 + 32) return make_error("pow chain file: truncated");

  const BytesView body(image.data(), image.size() - 32);
  const crypto::Hash256 expected = crypto::sha256(body);
  crypto::Hash256 stored;
  std::copy(image.end() - 32, image.end(), stored.bytes.begin());
  if (expected != stored) return make_error("pow chain file: integrity check failed");

  serde::Reader r(body);
  auto magic = r.raw(kMagicLen);
  if (!magic) return make_error(magic.error());
  if (std::string(magic.value().begin(), magic.value().end()) != kMagic) {
    return make_error("pow chain file: bad magic");
  }
  auto version = r.u32();
  if (!version) return make_error(version.error());
  if (version.value() != kPowChainFileVersion) {
    return make_error("pow chain file: unsupported version " + std::to_string(version.value()));
  }

  auto count = r.varint();
  if (!count) return make_error(count.error());
  if (count.value() == 0) return make_error("pow chain file: no blocks");
  if (count.value() > 10'000'000) return make_error("pow chain file: implausible block count");

  std::vector<PowBlock> blocks;
  blocks.reserve(count.value());
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto block_bytes = r.bytes();
    if (!block_bytes) return make_error(block_bytes.error());
    auto block =
        PowBlock::decode(BytesView(block_bytes.value().data(), block_bytes.value().size()));
    if (!block) return make_error(block.error());
    blocks.push_back(std::move(block.value()));
  }
  if (!r.exhausted()) return make_error("pow chain file: trailing bytes");
  if (blocks.front().header.height != 0) return make_error("pow chain file: genesis height != 0");
  return blocks;
}

}  // namespace gpbft::pow
