// Durable image format for a PoW best chain, mirroring ledger/store:
//
//   "GPBFTPOW" | u32 version | varint count | count x length-prefixed
//   encoded PowBlocks (genesis first) | sha256 integrity tail
//
// Only the best chain is persisted (side branches and orphans are
// reconstructible from gossip, and a reorg past a restart is equivalent to
// having restarted with a slightly stale snapshot). Deserialization checks
// the integrity tail and framing; proof-of-work and linkage validation
// happen when the blocks are re-added to a PowChain (Miner::restore_chain),
// which keeps the trust anchored in consensus rules rather than the disk.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "pow/pow_chain.hpp"

namespace gpbft::pow {

inline constexpr std::uint32_t kPowChainFileVersion = 1;

[[nodiscard]] Bytes serialize_pow_chain(const PowChain& chain);

/// Parses an image produced by serialize_pow_chain. Returns the block list
/// (genesis first) or an error on any corruption — torn writes and bit rot
/// fail the integrity tail before any block is decoded.
[[nodiscard]] Result<std::vector<PowBlock>> deserialize_pow_chain(BytesView image);

}  // namespace gpbft::pow
