#include "pow/miner.hpp"

#include "obs/profiler.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "pbft/messages.hpp"

namespace gpbft::pow {

Miner::Miner(NodeId id, std::vector<NodeId> peers, PowBlock genesis, MinerConfig config,
             net::Network& network)
    : id_(id), peers_(std::move(peers)), config_(config), network_(network),
      chain_(std::move(genesis), config.proof_difficulty, config.retarget) {}

void Miner::start() {
  network_.attach(this);
  running_ = true;
  mining_since_ = network_.simulator().now();
  arm_mining();
}

void Miner::stop() {
  account_mining_time();
  running_ = false;
}

void Miner::account_mining_time() {
  if (!running_) return;
  const TimePoint now = network_.simulator().now();
  hashes_computed_ += (now - mining_since_).to_seconds() * config_.hashrate;
  mining_since_ = now;
}

void Miner::arm_mining() {
  if (!running_) return;
  const std::uint64_t attempt = ++attempt_counter_;
  // Expected network-wide hashes per block = the tip's next difficulty
  // (retargeting included); this miner's solo expectation is
  // difficulty / hashrate seconds.
  const double mean_seconds =
      static_cast<double>(chain_.next_difficulty(chain_.tip_hash())) / config_.hashrate;
  const Duration solve =
      Duration::from_seconds(network_.simulator().rng().exponential(mean_seconds));
  network_.simulator().schedule(
      solve, [alive = std::weak_ptr<bool>(alive_), this, attempt]() {
        if (alive.lock()) on_block_found(attempt);
      });
}

void Miner::maybe_persist() {
  if (!persist_cb_) return;
  persist_cb_(chain_);
  network_.telemetry().count("pow.persists", id_);
}

void Miner::restore_chain(const std::vector<PowBlock>& blocks) {
  for (const PowBlock& block : blocks) {
    if (block.header.height == 0) continue;  // genesis is constructed, not loaded
    if (auto added = chain_.add_block(block); !added) {
      log_debug(id_.str() + ": restored block rejected: " + added.error());
      return;  // descendants would only pile up as orphans
    }
  }
}

void Miner::on_block_found(std::uint64_t attempt) {
  if (!running_ || attempt != attempt_counter_) return;  // superseded by a new tip
  if (network_.is_crashed(id_)) return;
  account_mining_time();

  PowBlock block;
  block.header.height = chain_.tip_height() + 1;
  block.header.prev_hash = chain_.tip_hash();
  block.header.difficulty = chain_.next_difficulty(chain_.tip_hash());
  block.header.timestamp = network_.simulator().now();
  block.header.miner = id_;
  // Skip anything already on the best chain (other miners' blocks carried
  // it first); transactions stranded on orphaned branches come back via
  // sync_mempool_with_best_chain, so nothing is lost to a reorg.
  block.transactions = mempool_.pop_batch(
      config_.max_batch_size, [this](const crypto::Hash256& digest) {
        return chain_.confirmation_depth(digest).has_value();
      });
  // Grind the scaled-down proof target (the consensus-difficulty hashes
  // were already paid for on the simulated clock; see mine_block docs).
  block = mine_block(std::move(block), config_.proof_difficulty, attempt);

  ++blocks_mined_;
  network_.telemetry().count("pow.blocks_mined", id_);
  network_.telemetry().instant("block.mined", "pow", id_,
                               {{"height", std::to_string(block.header.height)},
                                {"txs", std::to_string(block.transactions.size())}});
  if (auto added = chain_.add_block(block); !added) {
    // Should not happen for a self-built block on the local tip.
    log_warn(id_.str() + ": own block rejected: " + added.error());
  } else {
    sync_mempool_with_best_chain();
  }

  // One encoded block refcounted across the gossip fan-out.
  const net::Payload encoded{block.encode()};
  for (NodeId peer : peers_) {
    if (peer == id_) continue;
    net::Envelope envelope;
    envelope.from = id_;
    envelope.to = peer;
    envelope.type = kPowBlock;
    envelope.payload = encoded;
    network_.send(std::move(envelope));
  }

  check_confirmations();
  maybe_persist();  // own block extended the best tip
  arm_mining();     // mine on the new tip
}

void Miner::handle(const net::Envelope& envelope) {
  GPBFT_PROFILE_SCOPE("pow.miner.handle");
  switch (envelope.type) {
    case kPowBlock: {
      if (auto block = PowBlock::decode(BytesView(envelope.payload.data(),
                                                  envelope.payload.size()))) {
        on_block_received(std::move(block.value()), envelope.from);
      } else {
        network_.note_rejected(envelope.type);
      }
      break;
    }
    case kPowBlockRequest: {
      if (envelope.payload.size() == 32) {
        crypto::Hash256 wanted;
        std::copy(envelope.payload.begin(), envelope.payload.end(), wanted.bytes.begin());
        on_block_requested(wanted, envelope.from);
      } else {
        network_.note_rejected(envelope.type);
      }
      break;
    }
    case pbft::msg_type::kClientRequest: {
      // Plain (unsealed) transaction submissions from harness clients.
      if (auto tx = ledger::Transaction::decode(BytesView(envelope.payload.data(),
                                                          envelope.payload.size()))) {
        submit(std::move(tx.value()));
      } else {
        network_.note_rejected(envelope.type);
      }
      break;
    }
    default:
      network_.note_rejected(envelope.type);
      break;
  }
}

void Miner::on_block_received(PowBlock block, NodeId from) {
  account_mining_time();
  const crypto::Hash256 block_hash = block.hash();
  const crypto::Hash256 parent = block.header.prev_hash;
  auto added = chain_.add_block(std::move(block));
  if (!added) {
    log_debug(id_.str() + ": rejected gossip block: " + added.error());
    return;
  }
  // Mempool maintenance follows the best-chain delta, not the raw block:
  // only transactions that actually joined the best chain leave the pool
  // (a side-branch block must not flush pending transactions — it may
  // never win), and a reorg resurrects the losing branch's transactions.
  sync_mempool_with_best_chain();
  if (!chain_.contains(block_hash) && !chain_.contains(parent)) {
    // Buffered as an orphan: we missed the parent (crash, partition, loss).
    // Ask the announcer for it; the walk repeats per served ancestor until
    // the chains connect (the orphan buffer then connects descendants).
    net::Envelope request;
    request.from = id_;
    request.to = from;
    request.type = kPowBlockRequest;
    request.payload = Bytes(parent.bytes.begin(), parent.bytes.end());
    network_.send(std::move(request));
    return;
  }
  if (added.value()) {
    // Tip changed: restart mining on the new best chain.
    check_confirmations();
    maybe_persist();
    arm_mining();
  }
}

void Miner::sync_mempool_with_best_chain() {
  // Bitcoin-style reorg maintenance over the chain's last add_block delta:
  // transactions in blocks that left the best chain are resurrected unless
  // the new branch also confirmed them; transactions in blocks that joined
  // it leave the mempool. Without the resurrection leg a transaction mined
  // only on an orphaned branch would be lost forever — harness clients
  // submit once, so that is a liveness violation, not a nuisance.
  for (const crypto::Hash256& hash : chain_.last_disconnected()) {
    const PowBlock* block = chain_.find_block(hash);
    if (block == nullptr) continue;
    for (const ledger::Transaction& tx : block->transactions) {
      if (!chain_.confirmation_depth(tx.digest()).has_value()) (void)mempool_.add(tx);
    }
  }
  for (const crypto::Hash256& hash : chain_.last_connected()) {
    const PowBlock* block = chain_.find_block(hash);
    if (block == nullptr) continue;
    for (const ledger::Transaction& tx : block->transactions) mempool_.remove(tx.digest());
  }
}

void Miner::on_block_requested(const crypto::Hash256& block_hash, NodeId requester) {
  const PowBlock* block = chain_.find_block(block_hash);
  if (block == nullptr) return;  // unknown here too; a later announce retries
  net::Envelope envelope;
  envelope.from = id_;
  envelope.to = requester;
  envelope.type = kPowBlock;
  envelope.payload = block->encode();
  network_.send(std::move(envelope));
}

void Miner::submit(ledger::Transaction tx) {
  const crypto::Hash256 digest = tx.digest();
  if (!watched_.contains(digest) && !chain_.confirmation_depth(digest).has_value()) {
    watched_.emplace(digest, network_.simulator().now());
  }
  (void)mempool_.add(std::move(tx));
}

void Miner::check_confirmations() {
  for (auto it = watched_.begin(); it != watched_.end();) {
    const auto depth = chain_.confirmation_depth(it->first);
    if (depth.has_value() && *depth >= config_.confirmation_depth) {
      const Duration latency = network_.simulator().now() - it->second;
      network_.telemetry().count("pow.txs_confirmed", id_);
      if (confirmed_cb_) confirmed_cb_(it->first, latency);
      it = watched_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gpbft::pow
