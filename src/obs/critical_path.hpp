// Commit critical-path analyzer over the causal Perfetto trace.
//
// Walks a recorded TraceRecorder stream causally from client request to
// commit and attributes each request's end-to-end latency to protocol
// phases — the per-phase timing breakdown the constrained-device PBFT
// study (arXiv 2104.05026) uses to make latency claims inspectable.
//
// Event conventions consumed (emitted by the PBFT-family stacks; PoW has
// no three-phase structure and yields no resolved requests):
//   async 'b' "request"       client submit, id = first 8 digest bytes;
//   async 'e' "request"       reply quorum at the client, args carry the
//                             committing `height`;
//   instant  "propose"        the primary minting a block, args `seq`/`txs`
//                             (seq == the block height it will commit at);
//   span     "phase.prepare"  primary pre-prepared -> prepare certificate;
//   span     "phase.commit"   prepare -> commit certificate;
//   span     "phase.execute"  commit -> executed, args carry `height`.
//
// The five attributed phases per request:
//   preprepare_wait  client submit -> primary pre-prepares the carrying
//                    block (client->primary wire + receive queue + batch
//                    accumulation wait);
//   prepare          the primary's prepare-quorum span;
//   commit           the primary's commit-quorum span;
//   execute          the primary's execute span;
//   reply            execute end -> reply quorum at the client.
//
// Requests whose carrying block cannot be resolved (trace-capacity drops,
// view changes that re-proposed the height, sync-adopted blocks) are
// counted as unresolved and excluded from the percentile tables.
//
// Everything here is deterministic: inputs are simulated-time events, so
// two same-seed runs produce byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gpbft::obs {

struct RequestBreakdown {
  std::uint64_t trace_id{0};
  std::uint64_t height{0};
  std::uint64_t primary{0};  // node id that proposed the carrying block
  std::int64_t submit_ns{0};
  std::int64_t reply_ns{0};  // absolute end instant
  // Phase durations, in trace order; the five sum to total_ns().
  std::int64_t preprepare_wait{0};
  std::int64_t prepare{0};
  std::int64_t commit{0};
  std::int64_t execute{0};
  std::int64_t reply{0};

  [[nodiscard]] std::int64_t total_ns() const { return reply_ns - submit_ns; }
};

struct PhasePercentiles {
  std::string name;
  double p50_ms{0}, p90_ms{0}, p99_ms{0}, max_ms{0};
  double total_ms{0};  // summed over requests: the phase's share basis
};

class CriticalPathReport {
 public:
  /// Scans the recorded events once and resolves every completed request.
  [[nodiscard]] static CriticalPathReport analyze(const TraceRecorder& trace);

  [[nodiscard]] const std::vector<RequestBreakdown>& requests() const { return requests_; }
  /// Requests that reached a reply but whose carrying block's phase spans
  /// could not be resolved from the trace.
  [[nodiscard]] std::size_t unresolved() const { return unresolved_; }
  [[nodiscard]] bool empty() const { return requests_.empty(); }

  /// Per-phase percentile breakdown plus the end-to-end row; `share` is
  /// the phase's fraction of summed end-to-end latency.
  [[nodiscard]] std::vector<PhasePercentiles> phase_stats() const;
  [[nodiscard]] std::string phase_table() const;
  /// The `top_n` slowest requests with their per-phase attribution.
  [[nodiscard]] std::string slowest_table(std::size_t top_n = 10) const;

 private:
  std::vector<RequestBreakdown> requests_;
  std::size_t unresolved_{0};
};

}  // namespace gpbft::obs
