#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>

namespace gpbft::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

Profiler::SiteId Profiler::register_site(std::string name) {
  // Registration runs once per site per thread reaching the macro's
  // function-local static; workers and the sim thread can race here, so
  // the tables are locked. Probe enter/leave stay lock-free.
  const std::lock_guard<std::mutex> lock(sites_mu_);
  const auto it = site_ids_.find(name);
  if (it != site_ids_.end()) return it->second;
  const SiteId id = static_cast<SiteId>(site_names_.size());
  site_ids_.emplace(name, id);
  site_names_.push_back(std::move(name));
  return id;
}

Profiler::Node* Profiler::Node::child(SiteId s) {
  // Linear scan: probe trees are shallow and narrow (a handful of children
  // per node), so this beats a map on the hot path.
  for (const auto& c : children) {
    if (c->site == s) return c.get();
  }
  children.push_back(std::make_unique<Node>());
  children.back()->site = s;
  return children.back().get();
}

std::uint64_t Profiler::Node::self_ns() const {
  std::uint64_t child_ns = 0;
  for (const auto& c : children) child_ns += c->wall_ns;
  return wall_ns > child_ns ? wall_ns - child_ns : 0;
}

void Profiler::enter(SiteId site) {
  Node* parent = stack_.empty() ? &root_ : stack_.back().node;
  Node* node = parent->child(site);
  node->calls += 1;
  stack_.push_back(Frame{node, steady_now_ns()});
}

void Profiler::leave() {
  if (stack_.empty()) return;  // unbalanced leave: ignore rather than corrupt
  const Frame frame = stack_.back();
  stack_.pop_back();
  frame.node->wall_ns += steady_now_ns() - frame.start_ns;
}

void Profiler::clear() {
  root_ = Node{};
  stack_.clear();
}

std::uint64_t Profiler::total_wall_ns() const {
  std::uint64_t total = 0;
  for (const auto& c : root_.children) total += c->wall_ns;
  return total;
}

namespace {

void node_to_json(std::string& out, std::uint64_t calls, std::uint64_t wall_ns,
                  std::uint64_t self_ns, const std::string& name) {
  out += "{\"name\":\"";
  append_json_escaped(out, name);
  out += "\",\"calls\":" + std::to_string(calls);
  out += ",\"wall_ns\":" + std::to_string(wall_ns);
  out += ",\"self_ns\":" + std::to_string(self_ns);
}

}  // namespace

std::string Profiler::to_json() const {
  std::string out = "{\"profiler\":{\"sites\":" + std::to_string(site_names_.size()) +
                    ",\"tree\":";
  // Iterative DFS with explicit emit state would obscure the simple shape;
  // recursion depth equals probe nesting depth (single digits).
  const std::function<void(const Node&, const std::string&)> emit =
      [&](const Node& node, const std::string& name) {
        node_to_json(out, node.calls, node.wall_ns, node.self_ns(), name);
        out += ",\"children\":[";
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          if (i != 0) out += ',';
          const Node& child = *node.children[i];
          emit(child, site_names_.at(child.site));
        }
        out += "]}";
      };
  emit(root_, "(root)");
  out += "}}\n";
  return out;
}

std::string Profiler::to_collapsed() const {
  std::string out;
  std::vector<const Node*> path;
  const std::function<void(const Node&)> walk = [&](const Node& node) {
    path.push_back(&node);
    const std::uint64_t self = node.self_ns();
    if (self > 0 && node.site != kNoSite) {
      std::string line;
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (path[i]->site == kNoSite) continue;  // the implicit root
        if (!line.empty()) line += ';';
        line += site_names_.at(path[i]->site);
      }
      out += line + ' ' + std::to_string(self) + '\n';
    }
    for (const auto& c : node.children) walk(*c);
    path.pop_back();
  };
  walk(root_);
  return out;
}

std::string Profiler::hotspot_table(std::size_t top_n) const {
  struct Rollup {
    std::uint64_t self_ns{0};
    std::uint64_t wall_ns{0};
    std::uint64_t calls{0};
  };
  std::vector<Rollup> per_site(site_names_.size());
  const std::function<void(const Node&)> walk = [&](const Node& node) {
    if (node.site != kNoSite) {
      Rollup& r = per_site[node.site];
      r.self_ns += node.self_ns();
      r.calls += node.calls;
      r.wall_ns += node.wall_ns;
    }
    for (const auto& c : node.children) walk(*c);
  };
  walk(root_);

  std::vector<SiteId> order;
  for (SiteId id = 0; id < static_cast<SiteId>(per_site.size()); ++id) {
    if (per_site[id].calls > 0) order.push_back(id);
  }
  std::sort(order.begin(), order.end(), [&](SiteId a, SiteId b) {
    if (per_site[a].self_ns != per_site[b].self_ns) {
      return per_site[a].self_ns > per_site[b].self_ns;
    }
    return a < b;
  });
  if (order.size() > top_n) order.resize(top_n);

  const double total = static_cast<double>(total_wall_ns());
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-34s %8s %12s %12s %12s %10s\n", "site", "self%",
                "self(ms)", "incl(ms)", "calls", "ns/call");
  out += buf;
  for (const SiteId id : order) {
    const Rollup& r = per_site[id];
    const double pct = total <= 0 ? 0.0 : 100.0 * static_cast<double>(r.self_ns) / total;
    const double per_call =
        r.calls == 0 ? 0.0 : static_cast<double>(r.self_ns) / static_cast<double>(r.calls);
    std::snprintf(buf, sizeof(buf), "%-34s %7.2f%% %12.3f %12.3f %12llu %10.0f\n",
                  site_names_.at(id).c_str(), pct, static_cast<double>(r.self_ns) / 1e6,
                  static_cast<double>(r.wall_ns) / 1e6,
                  static_cast<unsigned long long>(r.calls), per_call);
    out += buf;
  }
  if (order.empty()) out += "(no samples: profiler was disabled or nothing ran)\n";
  return out;
}

bool Profiler::write_json(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  const std::string body = to_json();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(file);
}

bool Profiler::write_collapsed(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  const std::string body = to_collapsed();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(file);
}

}  // namespace gpbft::obs
