#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace gpbft::obs {

namespace {

/// %.17g renders a double so that parsing the text recovers the exact bits
/// (matches bench_util / scenario printing).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void Histogram::observe(double v) {
  if (counts.size() != bounds.size() + 1) counts.assign(bounds.size() + 1, 0);
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
  ++counts[static_cast<std::size_t>(it - bounds.begin())];
  sum += v;
  ++count;
}

void Histogram::merge(const Histogram& other) {
  sum += other.sum;
  count += other.count;
  if (bounds == other.bounds && counts.size() == other.counts.size()) {
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  }
}

const std::vector<double>& default_latency_bounds_seconds() {
  static const std::vector<double> kBounds = {0.001, 0.002, 0.005, 0.01, 0.02,  0.05, 0.1,
                                              0.2,   0.5,   1.0,   2.0,  5.0,   10.0, 20.0,
                                              50.0,  100.0, 200.0, 500.0};
  return kBounds;
}

const std::vector<double>& default_count_bounds() {
  static const std::vector<double> kBounds = {1.0,  2.0,   4.0,   8.0,   16.0,  32.0,
                                              64.0, 128.0, 256.0, 512.0, 1024.0};
  return kBounds;
}

const std::vector<double>& default_fraction_bounds() {
  static const std::vector<double> kBounds = {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0};
  return kBounds;
}

Counter& Registry::counter(std::string_view name, NodeId node) {
  return counters_[Key{std::string(name), node.value}];
}

Gauge& Registry::gauge(std::string_view name, NodeId node) {
  return gauges_[Key{std::string(name), node.value}];
}

Histogram& Registry::histogram(std::string_view name, NodeId node,
                               const std::vector<double>& bounds) {
  auto [it, inserted] = histograms_.try_emplace(Key{std::string(name), node.value});
  if (inserted) {
    it->second.bounds = bounds;
    it->second.counts.assign(bounds.size() + 1, 0);
  }
  return it->second;
}

std::uint64_t Registry::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(Key{std::string(name), 0}); it != counters_.end(); ++it) {
    if (it->first.first != name) break;
    total += it->second.value;
  }
  return total;
}

Histogram Registry::histogram_total(std::string_view name) const {
  Histogram total;
  for (auto it = histograms_.lower_bound(Key{std::string(name), 0}); it != histograms_.end();
       ++it) {
    if (it->first.first != name) break;
    if (total.bounds.empty() && total.count == 0) {
      total = it->second;
    } else {
      total.merge(it->second);
    }
  }
  return total;
}

const Counter* Registry::find_counter(std::string_view name, NodeId node) const {
  const auto it = counters_.find(Key{std::string(name), node.value});
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(std::string_view name, NodeId node) const {
  const auto it = histograms_.find(Key{std::string(name), node.value});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string Registry::to_jsonl() const {
  std::string out;
  for (const auto& [key, c] : counters_) {
    out += "{\"kind\":\"counter\",\"name\":\"";
    append_json_escaped(out, key.first);
    out += "\",\"node\":" + std::to_string(key.second);
    out += ",\"value\":" + std::to_string(c.value) + "}\n";
  }
  for (const auto& [key, g] : gauges_) {
    out += "{\"kind\":\"gauge\",\"name\":\"";
    append_json_escaped(out, key.first);
    out += "\",\"node\":" + std::to_string(key.second);
    out += ",\"value\":" + format_double(g.value) + "}\n";
  }
  for (const auto& [key, h] : histograms_) {
    out += "{\"kind\":\"histogram\",\"name\":\"";
    append_json_escaped(out, key.first);
    out += "\",\"node\":" + std::to_string(key.second);
    out += ",\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + format_double(h.sum);
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out += ',';
      out += format_double(h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "]}\n";
  }
  return out;
}

std::string Registry::summary() const {
  std::string out;
  std::string last;
  // Counters roll up per family (sum across nodes).
  for (const auto& [key, c] : counters_) {
    (void)c;
    if (key.first == last) continue;
    last = key.first;
    out += "counter   " + key.first + " = " + std::to_string(counter_total(key.first)) + "\n";
  }
  for (const auto& [key, g] : gauges_) {
    out += "gauge     " + key.first;
    if (key.second != 0) out += "[" + std::to_string(key.second) + "]";
    out += " = " + format_double(g.value) + "\n";
  }
  last.clear();
  for (const auto& [key, h] : histograms_) {
    (void)h;
    if (key.first == last) continue;
    last = key.first;
    const Histogram total = histogram_total(key.first);
    out += "histogram " + key.first + " count=" + std::to_string(total.count) +
           " mean=" + format_double(total.mean()) + "\n";
  }
  return out;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace gpbft::obs
