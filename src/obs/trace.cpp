#include "obs/trace.hpp"

#include <cstdio>

namespace gpbft::obs {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Renders integral nanoseconds as microseconds with exactly three decimals
/// ("1234.567"): no floating point, so the bytes never vary.
void append_us(std::string& out, std::int64_t ns) {
  if (ns < 0) {
    out += '-';
    ns = -ns;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void append_args(std::string& out, const TraceRecorder::Args& args) {
  out += ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    append_json_escaped(out, args[i].first);
    out += "\":\"";
    append_json_escaped(out, args[i].second);
    out += '"';
  }
  out += '}';
}

}  // namespace

void TraceRecorder::push(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::complete_span(TimePoint begin, TimePoint end, NodeId node, std::string name,
                                  std::string category, Args args) {
  TraceEvent e;
  e.ts_ns = begin.ns;
  e.dur_ns = end.ns - begin.ns;
  if (e.dur_ns < 0) e.dur_ns = 0;
  e.phase = 'X';
  e.tid = node.value;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  push(std::move(e));
}

void TraceRecorder::instant(TimePoint at, NodeId node, std::string name, std::string category,
                            Args args) {
  TraceEvent e;
  e.ts_ns = at.ns;
  e.phase = 'i';
  e.tid = node.value;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  push(std::move(e));
}

void TraceRecorder::async_begin(std::uint64_t id, TimePoint at, NodeId node, std::string name,
                                std::string category, Args args) {
  TraceEvent e;
  e.ts_ns = at.ns;
  e.phase = 'b';
  e.tid = node.value;
  e.async_id = id;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  push(std::move(e));
}

void TraceRecorder::async_end(std::uint64_t id, TimePoint at, NodeId node, std::string name,
                              std::string category, Args args) {
  TraceEvent e;
  e.ts_ns = at.ns;
  e.phase = 'e';
  e.tid = node.value;
  e.async_id = id;
  e.name = std::move(name);
  e.category = std::move(category);
  e.args = std::move(args);
  push(std::move(e));
}

void TraceRecorder::set_thread_name(NodeId node, std::string name) {
  thread_names_[node.value] = std::move(name);
}

std::string TraceRecorder::to_perfetto_json() const {
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  // Thread-name metadata first so viewers label rows before any event.
  for (const auto& [tid, name] : thread_names_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_json_escaped(out, name);
    out += "\"}}";
  }
  for (const auto& e : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":";
    append_us(out, e.ts_ns);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      append_us(out, e.dur_ns);
    }
    if (e.phase == 'b' || e.phase == 'e') {
      out += ",\"id\":\"" + std::to_string(e.async_id) + "\"";
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, e.category.empty() ? std::string("event") : e.category);
    out += '"';
    append_args(out, e.args);
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"" +
         std::to_string(dropped_) + "\"}}\n";
  return out;
}

void TraceRecorder::clear() {
  events_.clear();
  thread_names_.clear();
  dropped_ = 0;
}

}  // namespace gpbft::obs
