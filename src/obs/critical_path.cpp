#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

namespace gpbft::obs {

namespace {

std::optional<std::uint64_t> arg_u64(const TraceEvent& event, const char* key) {
  for (const auto& [k, v] : event.args) {
    if (k == key) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0') return std::nullopt;
      return static_cast<std::uint64_t>(parsed);
    }
  }
  return std::nullopt;
}

double to_ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

// Type-7 (linear interpolation) percentile over an already-sorted vector,
// matching sim::LatencyRecorder's convention.
double percentile_sorted_ms(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return to_ms(sorted.front());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return to_ms(sorted[lo]) + frac * (to_ms(sorted[hi]) - to_ms(sorted[lo]));
}

struct PhaseSpan {
  std::int64_t begin_ns{0};
  std::int64_t end_ns{0};
};

}  // namespace

CriticalPathReport CriticalPathReport::analyze(const TraceRecorder& trace) {
  CriticalPathReport report;

  // Pass 1: index the block-level structure.
  //   height -> proposing node (first "propose" instant wins; a re-proposal
  //   after a view change replaces it, so we keep the *last*, which is the
  //   one whose phase spans actually committed).
  std::map<std::uint64_t, std::uint64_t> primary_of;
  struct BlockPhases {
    std::optional<PhaseSpan> prepare, commit, execute;
  };
  // (height, node) -> spans; resolved against primary_of in pass 2.
  std::map<std::pair<std::uint64_t, std::uint64_t>, BlockPhases> phases;
  struct PendingRequest {
    std::int64_t submit_ns{0};
    bool open{false};
  };
  std::map<std::uint64_t, PendingRequest> pending;

  for (const TraceEvent& event : trace.events()) {
    if (event.phase == 'i' && event.name == "propose") {
      if (const auto seq = arg_u64(event, "seq")) primary_of[*seq] = event.tid;
    } else if (event.phase == 'X' && event.name.rfind("phase.", 0) == 0) {
      const auto height = arg_u64(event, "height");
      if (!height) continue;
      BlockPhases& block = phases[{*height, event.tid}];
      const PhaseSpan span{event.ts_ns, event.ts_ns + event.dur_ns};
      if (event.name == "phase.prepare") block.prepare = span;
      else if (event.name == "phase.commit") block.commit = span;
      else if (event.name == "phase.execute") block.execute = span;
    } else if (event.phase == 'b' && event.name == "request") {
      pending[event.async_id] = PendingRequest{event.ts_ns, true};
    }
  }

  // Pass 2: resolve each completed request against its carrying block.
  for (const TraceEvent& event : trace.events()) {
    if (event.phase != 'e' || event.name != "request") continue;
    const auto it = pending.find(event.async_id);
    if (it == pending.end() || !it->second.open) continue;
    it->second.open = false;

    const auto height = arg_u64(event, "height");
    if (!height) {
      ++report.unresolved_;
      continue;
    }
    const auto primary_it = primary_of.find(*height);
    if (primary_it == primary_of.end()) {
      ++report.unresolved_;
      continue;
    }
    const auto phase_it = phases.find({*height, primary_it->second});
    if (phase_it == phases.end() || !phase_it->second.prepare || !phase_it->second.commit ||
        !phase_it->second.execute) {
      ++report.unresolved_;
      continue;
    }
    const BlockPhases& block = phase_it->second;

    RequestBreakdown r;
    r.trace_id = event.async_id;
    r.height = *height;
    r.primary = primary_it->second;
    r.submit_ns = it->second.submit_ns;
    r.reply_ns = event.ts_ns;
    r.preprepare_wait = std::max<std::int64_t>(0, block.prepare->begin_ns - r.submit_ns);
    r.prepare = block.prepare->end_ns - block.prepare->begin_ns;
    r.commit = block.commit->end_ns - block.commit->begin_ns;
    r.execute = block.execute->end_ns - block.execute->begin_ns;
    r.reply = std::max<std::int64_t>(0, r.reply_ns - block.execute->end_ns);
    report.requests_.push_back(r);
  }

  return report;
}

std::vector<PhasePercentiles> CriticalPathReport::phase_stats() const {
  struct Series {
    const char* name;
    std::int64_t RequestBreakdown::* field;
  };
  static constexpr Series kSeries[] = {
      {"preprepare_wait", &RequestBreakdown::preprepare_wait},
      {"prepare", &RequestBreakdown::prepare},
      {"commit", &RequestBreakdown::commit},
      {"execute", &RequestBreakdown::execute},
      {"reply", &RequestBreakdown::reply},
  };

  std::vector<PhasePercentiles> out;
  std::vector<std::int64_t> samples;
  samples.reserve(requests_.size());
  for (const Series& series : kSeries) {
    samples.clear();
    double total_ms = 0;
    for (const RequestBreakdown& r : requests_) {
      const std::int64_t v = r.*series.field;
      samples.push_back(v);
      total_ms += to_ms(v);
    }
    std::sort(samples.begin(), samples.end());
    PhasePercentiles p;
    p.name = series.name;
    p.p50_ms = percentile_sorted_ms(samples, 50);
    p.p90_ms = percentile_sorted_ms(samples, 90);
    p.p99_ms = percentile_sorted_ms(samples, 99);
    p.max_ms = samples.empty() ? 0.0 : to_ms(samples.back());
    p.total_ms = total_ms;
    out.push_back(std::move(p));
  }

  samples.clear();
  double total_ms = 0;
  for (const RequestBreakdown& r : requests_) {
    samples.push_back(r.total_ns());
    total_ms += to_ms(r.total_ns());
  }
  std::sort(samples.begin(), samples.end());
  PhasePercentiles e2e;
  e2e.name = "end_to_end";
  e2e.p50_ms = percentile_sorted_ms(samples, 50);
  e2e.p90_ms = percentile_sorted_ms(samples, 90);
  e2e.p99_ms = percentile_sorted_ms(samples, 99);
  e2e.max_ms = samples.empty() ? 0.0 : to_ms(samples.back());
  e2e.total_ms = total_ms;
  out.push_back(std::move(e2e));
  return out;
}

std::string CriticalPathReport::phase_table() const {
  const std::vector<PhasePercentiles> stats = phase_stats();
  const double e2e_total = stats.back().total_ms;

  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "commit critical path (%zu requests, %zu unresolved)\n",
                requests_.size(), unresolved_);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-16s %8s %10s %10s %10s %10s\n", "phase", "share",
                "p50(ms)", "p90(ms)", "p99(ms)", "max(ms)");
  out += buf;
  for (const PhasePercentiles& p : stats) {
    const double share = e2e_total <= 0 ? 0.0 : 100.0 * p.total_ms / e2e_total;
    std::snprintf(buf, sizeof(buf), "%-16s %7.2f%% %10.3f %10.3f %10.3f %10.3f\n",
                  p.name.c_str(), share, p.p50_ms, p.p90_ms, p.p99_ms, p.max_ms);
    out += buf;
  }
  return out;
}

std::string CriticalPathReport::slowest_table(std::size_t top_n) const {
  std::vector<const RequestBreakdown*> order;
  order.reserve(requests_.size());
  for (const RequestBreakdown& r : requests_) order.push_back(&r);
  std::sort(order.begin(), order.end(), [](const RequestBreakdown* a, const RequestBreakdown* b) {
    if (a->total_ns() != b->total_ns()) return a->total_ns() > b->total_ns();
    return a->trace_id < b->trace_id;  // deterministic tie-break
  });
  if (order.size() > top_n) order.resize(top_n);

  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-18s %8s %10s %10s %9s %9s %9s %9s\n", "request", "height",
                "total(ms)", "ppwait(ms)", "prep(ms)", "comm(ms)", "exec(ms)", "reply(ms)");
  out += buf;
  for (const RequestBreakdown* r : order) {
    std::snprintf(buf, sizeof(buf), "%016llx %8llu %10.3f %10.3f %9.3f %9.3f %9.3f %9.3f\n",
                  static_cast<unsigned long long>(r->trace_id),
                  static_cast<unsigned long long>(r->height), to_ms(r->total_ns()),
                  to_ms(r->preprepare_wait), to_ms(r->prepare), to_ms(r->commit),
                  to_ms(r->execute), to_ms(r->reply));
    out += buf;
  }
  if (order.empty()) out += "(no resolved requests in trace)\n";
  return out;
}

}  // namespace gpbft::obs
