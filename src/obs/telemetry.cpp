#include "obs/telemetry.hpp"

#include <cstdio>

namespace gpbft::obs {

namespace {
struct NoopHolder {
  Telemetry telemetry;
  NoopHolder() { telemetry.set_enabled(false); }
};
}  // namespace

Telemetry& Telemetry::noop() {
  static NoopHolder holder;
  return holder.telemetry;
}

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace

bool Telemetry::write_trace(const std::string& path) const {
  return write_file(path, trace_.to_perfetto_json());
}

bool Telemetry::write_metrics_jsonl(const std::string& path) const {
  return write_file(path, metrics_.to_jsonl());
}

}  // namespace gpbft::obs
