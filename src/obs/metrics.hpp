// Deterministic per-node metrics registry.
//
// Named counters, gauges and fixed-bucket histograms, keyed by (name, node).
// Node 0 is the deployment-global series; protocol nodes use their NodeId.
// Everything is stored in ordered maps so snapshots are byte-identical for
// identical runs — the registry draws no randomness and never reads the wall
// clock. Handles returned by counter()/gauge()/histogram() are stable for
// the registry's lifetime (map storage), so hot paths resolve a metric once
// and bump the reference afterwards.
//
// Snapshots export as line-oriented JSONL (one metric per line, sorted by
// name then node) and as a human-readable text summary; doubles render with
// %.17g so a parsed value round-trips exactly (the repo-wide convention).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace gpbft::obs {

struct Counter {
  std::uint64_t value{0};
  void add(std::uint64_t delta = 1) { value += delta; }
};

struct Gauge {
  double value{0.0};
  void set(double v) { value = v; }
  void set_max(double v) {
    if (v > value) value = v;
  }
};

/// Fixed upper-bound buckets (ascending) plus an implicit +inf bucket.
/// counts.size() == bounds.size() + 1.
struct Histogram {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum{0.0};
  std::uint64_t count{0};

  void observe(double v);
  [[nodiscard]] double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Merges another histogram with identical bounds (aggregation across
  /// nodes); mismatched bounds merge only sum/count.
  void merge(const Histogram& other);
};

/// Default latency buckets (seconds): 1ms .. ~500s, roughly x2 per step.
[[nodiscard]] const std::vector<double>& default_latency_bounds_seconds();

/// Power-of-two count buckets (1 .. 1024): batch sizes, queue depths and
/// other small-integer distributions.
[[nodiscard]] const std::vector<double>& default_count_bounds();

/// Octile buckets over [0, 1]: occupancy ratios and other fractions.
[[nodiscard]] const std::vector<double>& default_fraction_bounds();

class Registry {
 public:
  /// Node 0 addresses the deployment-global series.
  Counter& counter(std::string_view name, NodeId node = NodeId{0});
  Gauge& gauge(std::string_view name, NodeId node = NodeId{0});
  /// `bounds` is consulted only on first creation of (name, node).
  Histogram& histogram(std::string_view name, NodeId node = NodeId{0},
                       const std::vector<double>& bounds = default_latency_bounds_seconds());

  /// Sum of one counter family over every node (including node 0).
  [[nodiscard]] std::uint64_t counter_total(std::string_view name) const;
  /// Merge of one histogram family over every node.
  [[nodiscard]] Histogram histogram_total(std::string_view name) const;
  /// Read-only lookup; nullptr when the series does not exist.
  [[nodiscard]] const Counter* find_counter(std::string_view name, NodeId node = NodeId{0}) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name,
                                               NodeId node = NodeId{0}) const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// One JSON object per line, sorted by (name, node); deterministic bytes.
  [[nodiscard]] std::string to_jsonl() const;
  /// Human-readable rollup: per-family totals, histogram means.
  [[nodiscard]] std::string summary() const;

  void clear();

 private:
  using Key = std::pair<std::string, std::uint64_t>;  // (name, node id)
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace gpbft::obs
