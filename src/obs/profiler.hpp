// Wall-clock profiler: scoped RAII probes over the host's steady clock.
//
// The deterministic telemetry registry (metrics.hpp) answers *what* a run
// computed; this profiler answers *where the host CPU time went* while
// computing it — the attribution layer the parallel-core work is judged
// with (ROADMAP "parallel simulation core"). Design rules:
//
//   - Strictly outside the simulation. The profiler reads
//     std::chrono::steady_clock and nothing else; it never touches RNG
//     streams, event ordering, simulated time or any state a golden hash
//     covers. A profiled run's chain tip, metrics JSONL and Perfetto trace
//     are byte-identical to an unprofiled same-seed run (guarded by
//     tests/profiler_test.cpp, ctest label tier1-profile).
//   - Cheap when off, zero when compiled out. Probes are gated on one
//     boolean; with the profiler disabled a probe site costs a static-init
//     check plus one branch. Defining GPBFT_PROF_DISABLED folds every
//     probe macro to nothing, so the instrumentation vanishes entirely.
//   - Hierarchical. Active probes form a stack; time is accounted to a
//     call tree keyed by probe site, so a site's *inclusive* time (its
//     whole subtree) and *exclusive* time (inclusive minus children) are
//     both available. The same site reached through different parents gets
//     distinct tree nodes — exactly what a flamegraph wants.
//
// Sites register once per process (static registration: the macro stores
// the id in a function-local static, and registering the same name twice
// returns the same id). The profiler is a process-wide singleton. The tree
// and stack belong to the thread that created the singleton (the simulation
// thread): probes hit from any other thread — the parallel MAC plane's
// workers run seal/verify sites — latch inactive and record nothing, so the
// hot path stays lock-free and the tree stays single-threaded. Site
// registration is mutex-guarded because function-local statics in worker-
// reachable code paths register concurrently.
//
// Exports:
//   to_json()       nested call tree; `calls` and structure are
//                   deterministic for a seeded run, `wall_ns`/`self_ns`
//                   are host measurements (scripts/check_trace.py compares
//                   two runs on the deterministic fields only);
//   to_collapsed()  Brendan Gregg collapsed-stack lines
//                   ("a;b;c <self_ns>") — feed to flamegraph.pl / speedscope;
//   hotspot_table() per-site rollup sorted by exclusive time (the CLI's
//                   `profile` subcommand prints this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gpbft::obs {

class Profiler {
 public:
  using SiteId = std::uint32_t;
  static constexpr SiteId kNoSite = ~SiteId{0};

  [[nodiscard]] static Profiler& instance();

  /// Registers (or looks up) a probe site by name; ids are stable for the
  /// process lifetime and identical names share one id.
  SiteId register_site(std::string name);
  [[nodiscard]] const std::string& site_name(SiteId id) const { return site_names_.at(id); }
  [[nodiscard]] std::size_t site_count() const { return site_names_.size(); }

  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Toggle only between runs (with no probes open): enabling or disabling
  /// mid-scope would unbalance the probe stack.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// True on the thread that owns the probe tree (the one that first
  /// touched the singleton — the simulation thread).
  [[nodiscard]] bool on_owner_thread() const {
    return std::this_thread::get_id() == owner_thread_;
  }

  /// Opens/closes a frame for `site` under the current tree position.
  /// Callers normally go through ScopedProbe, which pairs these.
  void enter(SiteId site);
  void leave();

  /// Drops all recorded samples (sites persist); resets the stack.
  void clear();

  [[nodiscard]] bool empty() const { return root_.children.empty(); }

  /// Nested call tree: {"profiler":{"sites":K,"tree":{...}}} where every
  /// node carries name / calls / wall_ns / self_ns / children. Names,
  /// calls and child order are deterministic for a seeded run.
  [[nodiscard]] std::string to_json() const;
  /// Collapsed-stack lines, one per tree node with nonzero self time:
  /// "root;a;b <self_ns>". Deterministic order (depth-first, creation
  /// order); values are wall nanoseconds.
  [[nodiscard]] std::string to_collapsed() const;
  /// Per-site rollup (summed over every tree position), sorted by
  /// exclusive wall time, top `top_n` rows.
  [[nodiscard]] std::string hotspot_table(std::size_t top_n = 15) const;

  [[nodiscard]] bool write_json(const std::string& path) const;
  [[nodiscard]] bool write_collapsed(const std::string& path) const;

  /// Total wall nanoseconds under all roots (the denominator of every
  /// percentage the hotspot table prints).
  [[nodiscard]] std::uint64_t total_wall_ns() const;

 private:
  struct Node {
    SiteId site{kNoSite};
    std::uint64_t calls{0};
    std::uint64_t wall_ns{0};  // inclusive
    std::vector<std::unique_ptr<Node>> children;  // creation order

    [[nodiscard]] Node* child(SiteId s);
    [[nodiscard]] std::uint64_t self_ns() const;
  };
  struct Frame {
    Node* node;
    std::uint64_t start_ns;
  };

  Profiler() = default;

  std::atomic<bool> enabled_{false};
  const std::thread::id owner_thread_{std::this_thread::get_id()};
  mutable std::mutex sites_mu_;  // guards site_names_ / site_ids_ only
  std::vector<std::string> site_names_;
  std::map<std::string, SiteId> site_ids_;
  Node root_;
  std::vector<Frame> stack_;
};

#ifdef GPBFT_PROF_DISABLED

class ScopedProbe {
 public:
  explicit constexpr ScopedProbe(Profiler::SiteId) {}
};

#define GPBFT_PROFILE_SCOPE(name) static_cast<void>(0)

#else

/// RAII frame around one probe site. The enabled check is latched at
/// construction so a (misplaced) mid-scope toggle cannot unbalance the
/// profiler's stack; off-owner-thread probes (worker-side seal/verify under
/// the parallel MAC plane) latch inactive — the tree is owned by the
/// simulation thread.
class ScopedProbe {
 public:
  explicit ScopedProbe(Profiler::SiteId site)
      : profiler_(Profiler::instance()),
        active_(profiler_.enabled() && profiler_.on_owner_thread()) {
    if (active_) profiler_.enter(site);
  }
  ~ScopedProbe() {
    if (active_) profiler_.leave();
  }
  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

 private:
  Profiler& profiler_;
  bool active_;
};

#define GPBFT_PROF_CONCAT_INNER(a, b) a##b
#define GPBFT_PROF_CONCAT(a, b) GPBFT_PROF_CONCAT_INNER(a, b)

/// Static-registration scoped probe: the site registers once (function-local
/// static), then every pass through the scope costs one branch while the
/// profiler is disabled.
#define GPBFT_PROFILE_SCOPE(name)                                                  \
  static const ::gpbft::obs::Profiler::SiteId GPBFT_PROF_CONCAT(gpbft_prof_site_,  \
                                                                __LINE__) =        \
      ::gpbft::obs::Profiler::instance().register_site(name);                      \
  ::gpbft::obs::ScopedProbe GPBFT_PROF_CONCAT(gpbft_prof_probe_, __LINE__)(        \
      GPBFT_PROF_CONCAT(gpbft_prof_site_, __LINE__))

#endif  // GPBFT_PROF_DISABLED

}  // namespace gpbft::obs
