// Causal trace recorder with Chrome/Perfetto JSON export.
//
// Records span and instant events stamped with simulated time so a seeded
// run becomes an inspectable artifact: a client request can be followed
// from submit through pre-prepare / prepare / commit / execute / reply,
// with chaos-engine fault injections and invariant-monitor verdicts in the
// same stream. Events carry the emitting node as the trace `tid`, so a
// Perfetto timeline shows one row per node.
//
// Export is the Chrome trace-event JSON format (the `traceEvents` array):
//   ph "X"  complete span (ts + dur)
//   ph "i"  instant event
//   ph "b"/"e"  async span begin/end, correlated by `id` (request lifelines
//               that hop between nodes)
//   ph "M"  metadata (thread names)
// Timestamps are microseconds; we render them from integral simulated
// nanoseconds as `<us>.<ns-remainder>` with exactly three decimals, so the
// exported bytes are identical across same-seed runs (no double rounding).
//
// The recorder is bounded: past `capacity()` events it counts drops instead
// of growing without limit, and the drop count is exported as metadata.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace gpbft::obs {

struct TraceEvent {
  std::int64_t ts_ns{0};
  std::int64_t dur_ns{0};            // complete spans only
  char phase{'i'};                   // 'X', 'i', 'b', 'e'
  std::uint64_t tid{0};              // emitting node id
  std::uint64_t async_id{0};         // 'b'/'e' correlation id
  std::string name;
  std::string category;
  std::vector<std::pair<std::string, std::string>> args;  // rendered as strings
};

class TraceRecorder {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  void complete_span(TimePoint begin, TimePoint end, NodeId node, std::string name,
                     std::string category, Args args = {});
  void instant(TimePoint at, NodeId node, std::string name, std::string category, Args args = {});
  void async_begin(std::uint64_t id, TimePoint at, NodeId node, std::string name,
                   std::string category, Args args = {});
  void async_end(std::uint64_t id, TimePoint at, NodeId node, std::string name,
                 std::string category, Args args = {});

  /// Display name for a node's timeline row ("replica-3", "client-10001").
  void set_thread_name(NodeId node, std::string name);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  /// Chrome/Perfetto trace JSON: {"traceEvents":[...]}; deterministic bytes.
  [[nodiscard]] std::string to_perfetto_json() const;

  void clear();

 private:
  void push(TraceEvent event);

  std::size_t capacity_{1u << 20};
  std::uint64_t dropped_{0};
  std::vector<TraceEvent> events_;
  std::map<std::uint64_t, std::string> thread_names_;
};

}  // namespace gpbft::obs
