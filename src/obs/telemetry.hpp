// Telemetry facade: one metrics registry + one trace recorder per
// deployment, reached by every layer through net::Network.
//
// Design constraints (DESIGN.md determinism rules apply here too):
//   - no randomness, no wall clock: the only time source is the simulated
//     clock injected via set_clock(), so telemetry can never perturb a run;
//   - cheap when off: every emitter is gated on enabled() (metrics) or
//     trace_enabled() (spans/instants), and the compile-time kill switch
//     GPBFT_OBS_DISABLED turns both gates into constant false so the
//     instrumentation folds away entirely;
//   - metrics stay on by default, tracing is opt-in (the CLI enables it
//     when --trace-out is given) so the 200-node benches pay no per-block
//     string cost.
//
// The obs library depends only on gpbft_common. Message-type and node names
// live in higher layers, so the facade takes pluggable namers: the sim
// layer installs pbft::message_type_name and per-deployment node labels.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpbft::obs {

class Telemetry {
 public:
  using Clock = std::function<TimePoint()>;
  using MessageNamer = std::function<std::string(std::uint32_t)>;
  using NodeNamer = std::function<std::string(NodeId)>;

  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// A process-wide permanently disabled instance, so layers that may run
  /// without a deployment (unit tests driving a bare Network) never need a
  /// null check. Do not enable or write to it.
  [[nodiscard]] static Telemetry& noop();

#ifdef GPBFT_OBS_DISABLED
  [[nodiscard]] constexpr bool enabled() const { return false; }
  [[nodiscard]] constexpr bool trace_enabled() const { return false; }
#else
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] bool trace_enabled() const { return enabled_ && trace_enabled_; }
#endif
  void set_enabled(bool on) { enabled_ = on; }
  void set_trace_enabled(bool on) { trace_enabled_ = on; }

  [[nodiscard]] Registry& metrics() { return metrics_; }
  [[nodiscard]] const Registry& metrics() const { return metrics_; }
  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }

  void set_clock(Clock clock) { clock_ = std::move(clock); }
  [[nodiscard]] TimePoint now() const { return clock_ ? clock_() : TimePoint{}; }

  void set_message_namer(MessageNamer namer) { message_namer_ = std::move(namer); }
  [[nodiscard]] std::string message_name(std::uint32_t type) const {
    return message_namer_ ? message_namer_(type) : "type-" + std::to_string(type);
  }
  void set_node_namer(NodeNamer namer) { node_namer_ = std::move(namer); }
  [[nodiscard]] std::string node_name(NodeId node) const {
    return node_namer_ ? node_namer_(node) : "node-" + std::to_string(node.value);
  }

  // --- gated convenience emitters (all no-ops when the gate is off) ---------
  void count(std::string_view name, NodeId node = NodeId{0}, std::uint64_t delta = 1) {
    if (enabled()) metrics_.counter(name, node).add(delta);
  }
  void observe(std::string_view name, double value, NodeId node = NodeId{0}) {
    if (enabled()) metrics_.histogram(name, node).observe(value);
  }
  /// Like observe(), but the series buckets on power-of-two counts instead
  /// of latency seconds (batch sizes, queue depths). Bounds bind on first
  /// creation, so one name must stick to one observe flavour.
  void observe_count(std::string_view name, double value, NodeId node = NodeId{0}) {
    if (enabled()) metrics_.histogram(name, node, default_count_bounds()).observe(value);
  }
  /// Like observe(), but buckets on octiles of [0, 1] (occupancy ratios).
  void observe_fraction(std::string_view name, double value, NodeId node = NodeId{0}) {
    if (enabled()) metrics_.histogram(name, node, default_fraction_bounds()).observe(value);
  }
  void instant(std::string name, std::string category, NodeId node,
               TraceRecorder::Args args = {}) {
    if (trace_enabled()) trace_.instant(now(), node, std::move(name), std::move(category),
                                        std::move(args));
  }
  void span(TimePoint begin, TimePoint end, NodeId node, std::string name, std::string category,
            TraceRecorder::Args args = {}) {
    if (trace_enabled()) trace_.complete_span(begin, end, node, std::move(name),
                                              std::move(category), std::move(args));
  }
  void async_begin(std::uint64_t id, NodeId node, std::string name, std::string category,
                   TraceRecorder::Args args = {}) {
    if (trace_enabled()) trace_.async_begin(id, now(), node, std::move(name), std::move(category),
                                            std::move(args));
  }
  void async_end(std::uint64_t id, NodeId node, std::string name, std::string category,
                 TraceRecorder::Args args = {}) {
    if (trace_enabled()) trace_.async_end(id, now(), node, std::move(name), std::move(category),
                                          std::move(args));
  }
  void name_node(NodeId node, std::string name) {
    if (trace_enabled()) trace_.set_thread_name(node, std::move(name));
  }

  // --- exporters ------------------------------------------------------------
  /// Write the Perfetto trace / metrics JSONL snapshot; false on I/O error.
  [[nodiscard]] bool write_trace(const std::string& path) const;
  [[nodiscard]] bool write_metrics_jsonl(const std::string& path) const;

 private:
  bool enabled_{true};
  bool trace_enabled_{false};
  Registry metrics_;
  TraceRecorder trace_;
  Clock clock_;
  MessageNamer message_namer_;
  NodeNamer node_namer_;
};

}  // namespace gpbft::obs
