#include "pbft/replica.hpp"

#include "obs/profiler.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace gpbft::pbft {

Replica::Replica(NodeId id, std::vector<NodeId> committee, ledger::Block genesis,
                 PbftConfig config, net::Network& network, const crypto::KeyRegistry& keys)
    : id_(id),
      committee_(std::move(committee)),
      config_(config),
      network_(network),
      keys_(keys),
      chain_(std::move(genesis)) {
  std::sort(committee_.begin(), committee_.end());
}

void Replica::start() {
  if (started_) return;
  started_ = true;
  network_.attach(this);
  arm_tick();
}

NodeId Replica::primary_of(ViewId view) const {
  return committee_[static_cast<std::size_t>(view % committee_.size())];
}

void Replica::send_to(NodeId to, net::MessageType type, BytesView body) {
  if (to == id_) return;
  if (lazy_seal_active()) {
    send_sealed_lazy(to, type, std::make_shared<const Bytes>(body.begin(), body.end()));
    return;
  }
  net::Envelope envelope;
  envelope.from = id_;
  envelope.to = to;
  envelope.type = type;
  envelope.payload = seal(keys_, id_, to, type, body, config_.compute_macs);
  network_.send(std::move(envelope));
}

void Replica::send_sealed_lazy(NodeId to, net::MessageType type,
                               const std::shared_ptr<const Bytes>& body) {
  net::Envelope envelope;
  envelope.from = id_;
  envelope.to = to;
  envelope.type = type;
  // Wire size is exact without the tag (sealed_size), so traffic accounting
  // and transmission delays are untouched; the HMAC itself runs on whichever
  // worker first needs the bytes — normally the receiver's verify prologue.
  envelope.payload = net::Payload(
      sealed_size(body->size()), [&keys = keys_, from = id_, to, type, body]() {
        return seal(keys, from, to, type, BytesView(body->data(), body->size()),
                    /*compute_macs=*/true);
      });
  network_.send(std::move(envelope));
}

void Replica::broadcast_committee(net::MessageType type, BytesView body) {
  send_to_each(committee_, type, body);
}

void Replica::send_to_each(const std::vector<NodeId>& peers, net::MessageType type,
                           BytesView body) {
  if (config_.compute_macs) {
    if (lazy_seal_active()) {
      // Per-receiver seals, deferred to the plane; one shared body buffer
      // feeds every receiver's seal closure.
      const auto shared = std::make_shared<const Bytes>(body.begin(), body.end());
      for (NodeId peer : peers) {
        if (peer == id_) continue;
        send_sealed_lazy(peer, type, shared);
      }
      return;
    }
    // Per-receiver MAC tags: every sealed payload differs, seal per peer.
    for (NodeId peer : peers) send_to(peer, type, body);
    return;
  }
  // MACs off: the seal is receiver-independent (zero tag), so one sealed
  // buffer serves the whole fan-out — N refcount bumps instead of N seals
  // and N payload copies. This is the broadcast hot path of every sweep
  // (sim::default_options runs with compute_macs=false).
  const net::Payload payload{seal(keys_, id_, NodeId{0}, type, body, /*compute_macs=*/false)};
  for (NodeId peer : peers) {
    if (peer == id_) continue;
    network_.send(net::Envelope{id_, peer, type, payload});
  }
}

void Replica::schedule_protected(Duration delay, std::function<void()> fn) {
  network_.simulator().schedule(
      delay, [alive = std::weak_ptr<bool>(alive_), fn = std::move(fn)]() {
        if (alive.lock()) fn();
      });
}

void Replica::persist_now() {
  if (!persist_cb_) return;
  persist_cb_(chain_);
  telemetry().count("pbft.persists", id_);
}

Result<BytesView> Replica::open_or_drop(const net::Envelope& envelope) {
  auto body = open_envelope(keys_, id_, envelope, config_.compute_macs);
  if (!body) {
    log_debug(id_.str() + ": rejecting message with bad seal: " + body.error());
    network_.note_rejected(envelope.type);
  }
  return body;
}

void Replica::handle(const net::Envelope& envelope) {
  GPBFT_PROFILE_SCOPE("pbft.replica.handle");
  if (fault_mode_ == FaultMode::Silent) return;

  const auto body = open_or_drop(envelope);
  if (!body) return;  // seal failure
  const BytesView view = body.value();

  // Wire-layer hardening: a body that opened but does not decode as its
  // claimed type is rejected, accounted, and otherwise ignored — reject,
  // don't crash (docs/protocol.md §12).
  const auto reject = [this, &envelope] { network_.note_rejected(envelope.type); };

  switch (envelope.type) {
    case msg_type::kClientRequest: {
      if (auto m = ClientRequest::decode(view)) {
        accept_request(std::move(m.value().transaction));
      } else {
        reject();
      }
      break;
    }
    case msg_type::kPrePrepare: {
      if (auto m = PrePrepare::decode(view)) {
        on_preprepare(envelope.from, m.value());
      } else {
        reject();
      }
      break;
    }
    case msg_type::kPrepare: {
      if (auto m = Prepare::decode(view)) {
        on_prepare(envelope.from, m.value());
      } else {
        reject();
      }
      break;
    }
    case msg_type::kCommit: {
      if (auto m = Commit::decode(view)) {
        on_commit(envelope.from, m.value());
      } else {
        reject();
      }
      break;
    }
    case msg_type::kCheckpoint: {
      if (auto m = CheckpointMsg::decode(view)) {
        on_checkpoint(envelope.from, m.value());
      } else {
        reject();
      }
      break;
    }
    case msg_type::kViewChange: {
      if (auto m = ViewChangeMsg::decode(view)) {
        on_view_change(envelope.from, std::move(m.value()));
      } else {
        reject();
      }
      break;
    }
    case msg_type::kNewView: {
      if (auto m = NewViewMsg::decode(view)) {
        on_new_view(envelope.from, m.value());
      } else {
        reject();
      }
      break;
    }
    case msg_type::kReply: {
      // Replicas do not track outstanding client requests, but they can
      // legitimately receive replies: an endorser that originated a config
      // transaction is that transaction's "client", so the reply cache
      // echoes replies at it. A well-formed reply is a protocol-level
      // no-op here; only a malformed one is a wire fault.
      if (!Reply::decode(view)) reject();
      break;
    }
    case msg_type::kSyncRequest: {
      if (auto m = SyncRequest::decode(view)) {
        on_sync_request(m.value());
      } else {
        reject();
      }
      break;
    }
    case msg_type::kSyncResponse: {
      if (auto m = SyncResponse::decode(view)) {
        on_sync_response(m.value());
      } else {
        reject();
      }
      break;
    }
    default:
      handle_extra(envelope);
      break;
  }
}

void Replica::handle_extra(const net::Envelope& envelope) {
  log_debug(id_.str() + ": unknown message type " + std::to_string(envelope.type));
  network_.note_rejected(envelope.type);
}

// --- client requests ---------------------------------------------------------

void Replica::accept_request(ledger::Transaction tx) {
  const crypto::Hash256 digest = tx.digest();
  if (const ClientTable::Entry* entry = client_table_.find(tx.sender);
      entry != nullptr && entry->last_digest == digest) {
    // Retransmission of this client's most recent executed request: answer
    // from the client table — one map lookup instead of the chain index
    // probe below. Retry storms resolve here.
    telemetry().count("pbft.client_table.hits", id_);
    Reply reply;
    reply.view = view_;
    reply.replica = id_;
    reply.tx_digest = digest;
    reply.height = entry->last_height;
    const Bytes body = reply.encode();
    send_to(tx.sender, msg_type::kReply, BytesView(body.data(), body.size()));
    return;
  }
  if (const auto height = chain_.find_transaction(digest)) {
    // Already committed: a client retransmitting lost its REPLY — answer
    // from the executed state (PBFT's reply cache, Castro-Liskov §4.1).
    Reply reply;
    reply.view = view_;
    reply.replica = id_;
    reply.tx_digest = digest;
    reply.height = *height;
    const Bytes body = reply.encode();
    send_to(tx.sender, msg_type::kReply, BytesView(body.data(), body.size()));
    return;
  }
  if (!mempool_.add(std::move(tx))) return;  // duplicate or full
  pending_since_.emplace(digest, now());
  maybe_propose();
}

std::vector<ledger::Transaction> Replica::select_batch() {
  // An accumulated batch must drain in one proposal even when the close
  // size exceeds the per-block cap tuned for the unbatched path.
  const std::size_t cap = std::max(config_.max_batch_size, config_.batch_close_size);
  std::vector<ledger::Transaction> batch =
      mempool_.pop_batch(cap, [this](const crypto::Hash256& digest) {
        return chain_.find_transaction(digest).has_value();
      });
  // A configuration transaction must install exactly the next era. A
  // leftover config tx from an abandoned era switch would otherwise linger
  // in the mempool and later commit a second, contradictory roster for an
  // era that already launched; popping it here discards it for good.
  std::erase_if(batch, [this](const ledger::Transaction& tx) {
    return tx.kind == ledger::TxKind::Config && tx.era_config.era != current_era() + 1;
  });
  return batch;
}

void Replica::on_view_changed(ViewId, ViewId) {}

Result<void> Replica::adopt_chain_suffix(const std::vector<ledger::Block>& blocks) {
  bool adopted_any = false;
  for (const ledger::Block& block : blocks) {
    if (block.header.height <= chain_.height()) continue;  // already have it
    if (auto appended = chain_.append(block); !appended) {
      if (adopted_any) persist_now();  // keep the partial progress durable
      return appended;
    }
    state_.apply_block(block, committee_);
    for (const ledger::Transaction& tx : block.transactions) {
      pending_since_.erase(tx.digest());
      mempool_.remove(tx.digest());
      client_table_.note_executed(tx, block.header.height);
    }
    // Retire the instance slot this block occupied, if any.
    const auto it = log_.find(block.header.height);
    if (it != log_.end()) it->second.executed = true;
    on_executed(block);
    if (executed_cb_) executed_cb_(block);
    adopted_any = true;
    telemetry().count("pbft.blocks_adopted", id_);
  }
  if (adopted_any) persist_now();  // sync progress is a durability point
  return {};
}

Result<void> Replica::restore_chain(const ledger::Chain& restored) {
  std::vector<ledger::Block> suffix;
  suffix.reserve(restored.size());
  for (Height h = 1; h <= restored.height(); ++h) suffix.push_back(restored.at(h));
  auto adopted = adopt_chain_suffix(suffix);
  // Everything on disk passed a durability point (stable checkpoint, config
  // block, adopted sync progress), so the window opens above it — otherwise
  // a node restored past watermark_window could never accept new instances
  // until peers' checkpoint votes arrived.
  stable_seq_ = std::max(stable_seq_, chain_.height());
  return adopted;
}

// --- chain sync ------------------------------------------------------------------

void Replica::maybe_request_sync() {
  const SeqNum next = chain_.height() + 1;
  const auto next_it = log_.find(next);
  if (next_it != log_.end() && next_it->second.block.has_value()) return;  // will execute

  // Evidence that the committee committed past us: f+1 commit votes (in any
  // digest bucket, current view or stashed from newer views) for a height
  // we cannot produce locally.
  const std::size_t f = faults_tolerated();
  bool behind = false;
  for (const auto& [seq, instance] : log_) {
    if (seq < next) continue;
    for (const auto& [digest, voters] : instance.commit_votes) {
      if (voters.size() >= f + 1) {
        behind = true;
        break;
      }
    }
    if (behind) break;
  }
  if (!behind) {
    // A straggler in an older view stashes newer-view commits instead of
    // counting them; enough distinct stashed voters are the same evidence.
    std::map<SeqNum, std::set<NodeId>> stashed_voters;
    for (const Commit& commit : stashed_commits_) {
      if (commit.seq >= next) stashed_voters[commit.seq].insert(commit.replica);
    }
    for (const auto& [seq, voters] : stashed_voters) {
      if (voters.size() >= f + 1) {
        behind = true;
        break;
      }
    }
  }
  if (!behind) return;
  if (last_sync_request_ && now() - *last_sync_request_ < config_.request_timeout / 4) {
    return;  // rate limit
  }
  last_sync_request_ = now();

  SyncRequest request;
  request.from_height = next;
  request.requester = id_;
  const Bytes body = request.encode();
  // Ask the current primary plus one rotating alternate (the primary may be
  // the faulty party).
  send_to(primary_of(view_), msg_type::kSyncRequest, BytesView(body.data(), body.size()));
  const NodeId alternate =
      committee_[static_cast<std::size_t>((view_ + 1 + next) % committee_.size())];
  if (alternate != primary_of(view_)) {
    send_to(alternate, msg_type::kSyncRequest, BytesView(body.data(), body.size()));
  }
}

void Replica::request_sync_from(NodeId peer) {
  if (last_sync_request_ && now() - *last_sync_request_ < config_.request_timeout / 4) {
    return;  // rate limit
  }
  send_sync_request(peer);
}

void Replica::send_sync_request(NodeId peer) {
  last_sync_request_ = now();
  telemetry().count("pbft.sync_requests", id_);
  SyncRequest request;
  request.from_height = chain_.height() + 1;
  request.requester = id_;
  const Bytes body = request.encode();
  send_to(peer, msg_type::kSyncRequest, BytesView(body.data(), body.size()));
}

void Replica::begin_resync() {
  resync_attempts_left_ = kResyncAttempts;
  resync_tick();
}

void Replica::resync_tick() {
  if (!started_ || resync_attempts_left_ == 0) return;
  --resync_attempts_left_;
  // Ask the primary plus a rotating alternate; the rotation covers the case
  // where the primary itself is crashed, partitioned or serving a degraded
  // link. No evidence gating: a rebuilt node *knows* it may be behind.
  const NodeId primary = primary_of(view_);
  send_sync_request(primary);
  const NodeId alternate = committee_[static_cast<std::size_t>(
      (view_ + 1 + resync_attempts_left_) % committee_.size())];
  if (alternate != primary) send_sync_request(alternate);
  schedule_protected(config_.request_timeout, [this, before = chain_.height()]() {
    // Retry only while no progress was made: any adopted response reaches
    // the responder's tip (or chains follow-ups itself via on_sync_response).
    if (chain_.height() == before) resync_tick();
  });
}

void Replica::on_sync_request(const SyncRequest& msg) {
  if (msg.from_height > chain_.height()) return;  // nothing to offer
  telemetry().count("pbft.sync_responses_served", id_);
  SyncResponse response;
  response.responder = id_;
  const Height last = std::min(chain_.height(), msg.from_height + kMaxSyncBlocks - 1);
  for (Height h = msg.from_height; h <= last; ++h) response.blocks.push_back(chain_.at(h));
  const Bytes body = response.encode();
  send_to(msg.requester, msg_type::kSyncResponse, BytesView(body.data(), body.size()));
}

void Replica::on_sync_response(const SyncResponse& msg) {
  if (msg.blocks.empty()) return;
  // Cross-check against any commit certificates we hold: a synced block
  // conflicting with a locally committed digest is a forgery (or a fork) —
  // refuse the whole response.
  for (const ledger::Block& block : msg.blocks) {
    const auto it = log_.find(block.header.height);
    if (it != log_.end() && it->second.committed && it->second.digest != block.hash()) {
      log_warn(id_.str() + ": sync response conflicts with commit certificate at height " +
               std::to_string(block.header.height));
      return;
    }
  }
  const Height before = chain_.height();
  if (auto adopted = adopt_chain_suffix(msg.blocks); !adopted) {
    log_debug(id_.str() + ": sync adoption stopped: " + adopted.error());
  }
  // A full response means the responder had more to give (deep catch-up
  // after a restart from a stale or empty disk): chain a follow-up request
  // immediately, bypassing the rate limit.
  if (chain_.height() > before && msg.blocks.size() >= kMaxSyncBlocks) {
    send_sync_request(msg.responder);
  }
  try_execute();
}

void Replica::maybe_propose() {
  GPBFT_PROFILE_SCOPE("pbft.propose");
  if (halted_ || in_view_change_ || !is_primary() || !ready_to_propose()) return;
  const SeqNum next_seq = chain_.height() + 1;
  const auto it = log_.find(next_seq);
  if (it != log_.end() && it->second.preprepared && !it->second.executed) return;  // in flight
  if (mempool_.empty()) return;

  bool closed_full = true;
  if (config_.batch_close_size > 1) {
    // Batch accumulation: the batch opens when its first request queues and
    // closes on size or on the deterministic deadline, whichever trips
    // first. Size wins when both trip in the same event, so the close
    // reason is a pure function of the event sequence.
    if (!batch_opened_at_) batch_opened_at_ = now();
    const bool full = mempool_.size() >= config_.batch_close_size;
    if (!full && now() - *batch_opened_at_ < config_.batch_close_timeout) {
      arm_batch_timer();
      return;
    }
    closed_full = full;
  }

  std::vector<ledger::Transaction> batch = select_batch();
  reset_batch_state();  // drained (or nothing proposable): close the epoch
  if (batch.empty()) return;

  const std::size_t batch_txs = batch.size();
  const bool proposed = propose_batch(std::move(batch));
  if (proposed && config_.batch_close_size > 1) {
    obs::Telemetry& tel = telemetry();
    if (tel.enabled()) {
      tel.count(closed_full ? "pbft.batch.closed_full" : "pbft.batch.closed_timeout", id_);
      tel.observe_count("pbft.batch.txs", static_cast<double>(batch_txs), id_);
      tel.observe_fraction(
          "pbft.batch.occupancy",
          static_cast<double>(batch_txs) / static_cast<double>(config_.batch_close_size), id_);
    }
    tel.instant("batch.close", "pbft", id_,
                {{"reason", closed_full ? "full" : "timeout"},
                 {"txs", std::to_string(batch_txs)}});
  }
}

void Replica::arm_batch_timer() {
  if (batch_timer_epoch_ == batch_epoch_) return;  // this batch already has one
  batch_timer_epoch_ = batch_epoch_;
  const Duration remaining = config_.batch_close_timeout - (now() - *batch_opened_at_);
  schedule_protected(remaining, [this, epoch = batch_epoch_]() {
    // The deadline belongs to one batch epoch; if that batch closed (or a
    // view change abandoned it) the timer is stale and must not re-gate
    // whatever batch is accumulating now.
    if (epoch != batch_epoch_) return;
    maybe_propose();
  });
}

void Replica::reset_batch_state() {
  ++batch_epoch_;
  batch_opened_at_.reset();
}

bool Replica::propose_batch(std::vector<ledger::Transaction> batch) {
  if (in_view_change_ || !is_primary()) return false;
  const SeqNum seq = chain_.height() + 1;
  if (!seq_in_window(seq)) return false;
  Instance& existing = log_[seq];
  if (existing.preprepared && !existing.executed) return false;

  ledger::Block block = ledger::build_block(chain_.tip().header, std::move(batch), current_era(),
                                            view_, seq, now(), id_);
  if (fault_mode_ == FaultMode::CorruptProposals) {
    block.header.merkle_root.bytes[0] ^= 0xff;  // body no longer committed to
  }
  PrePrepare msg;
  msg.view = view_;
  msg.seq = seq;
  msg.digest = block.hash();
  msg.block = std::move(block);

  Instance& instance = log_[seq];
  instance.view = view_;
  instance.digest = msg.digest;
  instance.block = msg.block;
  instance.preprepared = true;
  instance.preprepared_at = now();
  if (config_.two_phase) instance.prepare_votes[msg.digest].insert(id_);  // speaker's vote

  telemetry().count("pbft.batches_proposed", id_);
  telemetry().instant("propose", "pbft", id_,
                      {{"seq", std::to_string(seq)},
                       {"txs", std::to_string(instance.block->transactions.size())}});

  const Bytes body = msg.encode();
  broadcast_committee(msg_type::kPrePrepare, BytesView(body.data(), body.size()));
  // The primary's pre-prepare stands in for its prepare; backups' prepares
  // are counted against it in try_prepare.
  try_prepare(seq);
  return true;
}

// --- three-phase protocol ------------------------------------------------------

namespace {
bool config_only(const ledger::Block& block) {
  for (const ledger::Transaction& tx : block.transactions) {
    if (tx.kind != ledger::TxKind::Config) return false;
  }
  return !block.transactions.empty();
}
}  // namespace

void Replica::on_preprepare(NodeId from, const PrePrepare& msg) {
  // While halted for an era switch, only configuration blocks may proceed
  // (§III-E: the switch itself is committed under consensus).
  if (halted_ && !config_only(msg.block)) return;
  // Blocks are era-stamped at build time: a proposal minted under another
  // era (a straggling old-era primary, or a new-era one racing ahead of
  // this replica's own switch) must not enter the log — its roster and
  // view numbering no longer match ours. Stragglers catch up via chain
  // sync, which applies era configs through on_executed.
  if (msg.block.header.era != current_era()) return;
  if (in_view_change_ || msg.view > view_) {
    // Possibly a new primary running ahead of its NEW-VIEW: hold the
    // message and replay once the view settles.
    if (msg.view >= view_ && stashed_preprepares_.size() < kMaxStashed) {
      stashed_preprepares_.emplace_back(from, msg);
    }
    return;
  }
  if (msg.view != view_) return;
  if (from != primary_of(msg.view)) return;  // only the primary may propose
  if (!seq_in_window(msg.seq)) return;
  if (msg.digest != msg.block.hash()) return;
  if (msg.block.header.merkle_root != msg.block.compute_merkle_root()) return;
  // Backup-side twin of the select_batch filter: refuse proposals carrying
  // a configuration transaction for anything but the next era, so a stale
  // (or Byzantine) primary cannot commit a contradictory roster for an era
  // that already launched.
  for (const ledger::Transaction& tx : msg.block.transactions) {
    if (tx.kind == ledger::TxKind::Config && tx.era_config.era != current_era() + 1) return;
  }

  Instance& instance = log_[msg.seq];
  if (instance.preprepared && instance.view == msg.view && instance.digest != msg.digest) {
    // Conflicting proposal from the primary for the same (view, seq):
    // evidence of a faulty primary; refuse and let the timeout fire.
    log_warn(id_.str() + ": conflicting pre-prepare at seq " + std::to_string(msg.seq));
    return;
  }

  instance.view = msg.view;
  instance.digest = msg.digest;
  instance.block = msg.block;
  instance.preprepared = true;
  instance.preprepared_at = now();
  if (config_.two_phase) instance.prepare_votes[msg.digest].insert(from);  // speaker's vote
  telemetry().count("pbft.preprepares_accepted", id_);

  // Track request arrival for timeout purposes (backup may not have seen
  // the client request directly).
  for (const ledger::Transaction& tx : msg.block.transactions) {
    pending_since_.emplace(tx.digest(), now());
  }

  send_prepare(msg.seq, instance);
  try_prepare(msg.seq);
}

void Replica::send_prepare(SeqNum seq, const Instance& instance) {
  if (instance.prepare_sent) return;
  log_[seq].prepare_sent = true;

  Prepare msg;
  msg.view = instance.view;
  msg.seq = seq;
  msg.digest = instance.digest;
  msg.replica = id_;

  if (fault_mode_ == FaultMode::EquivocateDigest) {
    // Byzantine behaviour: send a corrupted digest to half the peers.
    bool flip = false;
    for (NodeId peer : committee_) {
      if (peer == id_) continue;
      Prepare sent = msg;
      if (flip) sent.digest.bytes[0] ^= 0xff;
      flip = !flip;
      const Bytes body = sent.encode();
      send_to(peer, msg_type::kPrepare, BytesView(body.data(), body.size()));
    }
  } else {
    const Bytes body = msg.encode();
    broadcast_committee(msg_type::kPrepare, BytesView(body.data(), body.size()));
  }

  log_[seq].prepare_votes[instance.digest].insert(id_);
  try_prepare(seq);
}

void Replica::on_prepare(NodeId from, const Prepare& msg) {
  if ((in_view_change_ || msg.view > view_) && msg.view >= view_) {
    if (stashed_prepares_.size() < kMaxStashed) stashed_prepares_.push_back(msg);
    return;
  }
  if (msg.view != view_ || !seq_in_window(msg.seq)) return;
  Instance& instance = log_[msg.seq];
  // Digest-keyed: early votes (before the pre-prepare) park under their
  // digest; only the pre-prepared digest's bucket counts toward the quorum.
  instance.prepare_votes[msg.digest].insert(from);
  try_prepare(msg.seq);
}

void Replica::try_prepare(SeqNum seq) {
  Instance& instance = log_[seq];
  if (!instance.preprepared || instance.prepared) return;
  const std::size_t f = faults_tolerated();
  const auto votes_it = instance.prepare_votes.find(instance.digest);
  const std::size_t votes = votes_it == instance.prepare_votes.end() ? 0 : votes_it->second.size();

  if (config_.two_phase) {
    // dBFT-style: 2f+1 PREPAREs (speaker's proposal included) finalize the
    // block directly; no COMMIT round.
    if (votes >= 2 * f + 1) {
      instance.prepared = true;
      instance.committed = true;
      instance.prepared_at = now();
      instance.committed_at = instance.prepared_at;
      telemetry().count("pbft.prepared", id_);
      telemetry().count("pbft.committed", id_);
      try_execute();
    }
    return;
  }

  // prepared == pre-prepare + 2f matching prepares from distinct replicas.
  if (votes >= 2 * f) {
    instance.prepared = true;
    instance.prepared_at = now();
    telemetry().count("pbft.prepared", id_);
    // Record the durable P-set entry (see Instance docs).
    instance.has_prepared = true;
    instance.prepared_view = instance.view;
    instance.prepared_digest = instance.digest;
    instance.prepared_block = instance.block;
    send_commit(seq, instance);
  }
}

void Replica::send_commit(SeqNum seq, const Instance& instance) {
  if (log_[seq].commit_sent) return;
  log_[seq].commit_sent = true;

  Commit msg;
  msg.view = instance.view;
  msg.seq = seq;
  msg.digest = instance.digest;
  msg.replica = id_;
  const Bytes body = msg.encode();
  broadcast_committee(msg_type::kCommit, BytesView(body.data(), body.size()));

  log_[seq].commit_votes[instance.digest].insert(id_);
  try_commit(seq);
}

void Replica::on_commit(NodeId from, const Commit& msg) {
  // COMMIT certificates are view-scoped like PREPAREs: stash future-view
  // votes, drop stale ones, park same-view votes under their digest.
  if ((in_view_change_ || msg.view > view_) && msg.view >= view_) {
    if (stashed_commits_.size() < kMaxStashed) stashed_commits_.push_back(msg);
    return;
  }
  if (msg.view != view_ || !seq_in_window(msg.seq)) return;
  Instance& instance = log_[msg.seq];
  instance.commit_votes[msg.digest].insert(from);
  try_commit(msg.seq);
}

void Replica::try_commit(SeqNum seq) {
  Instance& instance = log_[seq];
  if (!instance.prepared || instance.committed) return;
  const std::size_t f = faults_tolerated();
  const auto votes_it = instance.commit_votes.find(instance.digest);
  const std::size_t votes = votes_it == instance.commit_votes.end() ? 0 : votes_it->second.size();
  if (votes >= 2 * f + 1) {
    instance.committed = true;
    instance.committed_at = now();
    telemetry().count("pbft.committed", id_);
    try_execute();
  }
}

void Replica::try_execute() {
  GPBFT_PROFILE_SCOPE("pbft.execute");
  while (true) {
    const SeqNum next = chain_.height() + 1;
    const auto it = log_.find(next);
    if (it == log_.end() || !it->second.committed || it->second.executed) break;
    Instance& instance = it->second;
    if (!instance.block) break;

    ledger::Block block = *instance.block;
    if (auto appended = chain_.append(block); !appended) {
      log_error(id_.str() + ": committed block failed validation: " + appended.error());
      break;
    }
    state_.apply_block(block, committee_);
    instance.executed = true;
    ++executed_blocks_;

    // Per-phase attribution: how long this replica spent gathering each
    // certificate for the block it just executed. Blocks adopted via chain
    // sync never ran the three phases here, so the stamps gate on
    // `preprepared` (set only by the live protocol path).
    obs::Telemetry& tel = telemetry();
    if (tel.enabled()) {
      tel.count("pbft.blocks_executed", id_);
      if (instance.preprepared && instance.preprepared_at.ns != 0) {
        const TimePoint executed_at = now();
        tel.observe("pbft.phase.prepare_seconds",
                    (instance.prepared_at - instance.preprepared_at).to_seconds());
        tel.observe("pbft.phase.commit_seconds",
                    (instance.committed_at - instance.prepared_at).to_seconds());
        tel.observe("pbft.phase.execute_seconds",
                    (executed_at - instance.committed_at).to_seconds());
        if (tel.trace_enabled()) {
          const auto height_arg = std::to_string(block.header.height);
          tel.span(instance.preprepared_at, instance.prepared_at, id_, "phase.prepare", "pbft",
                   {{"height", height_arg}});
          tel.span(instance.prepared_at, instance.committed_at, id_, "phase.commit", "pbft",
                   {{"height", height_arg}});
          tel.span(instance.committed_at, executed_at, id_, "phase.execute", "pbft",
                   {{"height", height_arg}, {"txs", std::to_string(block.transactions.size())}});
        }
      }
    }

    for (const ledger::Transaction& tx : block.transactions) {
      const crypto::Hash256 digest = tx.digest();
      pending_since_.erase(digest);
      mempool_.remove(digest);
      client_table_.note_executed(tx, block.header.height);

      Reply reply;
      reply.view = view_;
      reply.replica = id_;
      reply.tx_digest = digest;
      reply.height = block.header.height;
      const Bytes body = reply.encode();
      send_to(tx.sender, msg_type::kReply, BytesView(body.data(), body.size()));
    }

    on_executed(block);
    if (executed_cb_) executed_cb_(block);
    // Configuration blocks change the roster a restarted node must rebuild
    // from disk — always worth a save (era switches are rare).
    for (const ledger::Transaction& tx : block.transactions) {
      if (tx.kind == ledger::TxKind::Config) {
        persist_now();
        break;
      }
    }
    maybe_checkpoint();
  }
  maybe_propose();
}

void Replica::on_executed(const ledger::Block&) {}

// --- checkpoints -----------------------------------------------------------------

void Replica::maybe_checkpoint() {
  const SeqNum height = chain_.height();
  if (height == 0 || height % config_.checkpoint_interval != 0) return;
  if (height <= stable_seq_) return;

  CheckpointMsg msg;
  msg.seq = height;
  msg.chain_digest = chain_.tip().hash();
  msg.replica = id_;
  const Bytes body = msg.encode();
  broadcast_committee(msg_type::kCheckpoint, BytesView(body.data(), body.size()));

  checkpoint_votes_[height][msg.chain_digest].insert(id_);
  on_checkpoint(id_, msg);
}

void Replica::on_checkpoint(NodeId from, const CheckpointMsg& msg) {
  if (msg.seq <= stable_seq_) return;
  auto& voters = checkpoint_votes_[msg.seq][msg.chain_digest];
  voters.insert(from);
  const std::size_t f = faults_tolerated();
  if (voters.size() < 2 * f + 1) return;

  // Stable: garbage-collect everything at or below, and persist — this is
  // PBFT's canonical durability point (the prefix is provably agreed).
  stable_seq_ = msg.seq;
  log_.erase(log_.begin(), log_.upper_bound(stable_seq_));
  checkpoint_votes_.erase(checkpoint_votes_.begin(), checkpoint_votes_.upper_bound(stable_seq_));
  telemetry().count("pbft.checkpoints_stable", id_);
  telemetry().instant("checkpoint.stable", "pbft", id_, {{"seq", std::to_string(stable_seq_)}});
  persist_now();
}

bool Replica::seq_in_window(SeqNum seq) const {
  return seq > stable_seq_ && seq <= stable_seq_ + config_.watermark_window;
}

// --- view changes -----------------------------------------------------------------

ViewChangeMsg Replica::build_view_change(ViewId new_view) const {
  ViewChangeMsg msg;
  msg.new_view = new_view;
  msg.last_executed = chain_.height();
  for (const auto& [seq, instance] : log_) {
    // The P set: every instance that EVER prepared (in any view) and is not
    // yet executed travels with the view change, highest-view entry first
    // at the new primary.
    if (instance.has_prepared && !instance.executed && instance.prepared_block) {
      PreparedProof proof;
      proof.view = instance.prepared_view;
      proof.seq = seq;
      proof.digest = instance.prepared_digest;
      proof.block = *instance.prepared_block;
      msg.prepared.push_back(std::move(proof));
    }
  }
  msg.replica = id_;
  return msg;
}

void Replica::initiate_view_change() {
  pending_view_ = in_view_change_ ? pending_view_ + 1 : view_ + 1;
  in_view_change_ = true;
  view_change_started_ = now();
  telemetry().count("pbft.view_changes_started", id_);
  telemetry().instant("view_change.start", "pbft", id_,
                      {{"pending_view", std::to_string(pending_view_)}});

  ViewChangeMsg msg = build_view_change(pending_view_);
  const Bytes body = msg.encode();
  broadcast_committee(msg_type::kViewChange, BytesView(body.data(), body.size()));
  on_view_change(id_, std::move(msg));
}

void Replica::on_view_change(NodeId from, ViewChangeMsg msg) {
  // A peer's VIEW-CHANGE advertises its executed height: if it is ahead of
  // us, we are a straggler — fetch the gap. This is what breaks the
  // straggler-induced view-change storm: the storm's own messages carry
  // the evidence the straggler needs to catch up and stop timing out.
  if (msg.last_executed > chain_.height()) request_sync_from(from);

  if (msg.new_view <= view_) return;
  // Votes executed below the current committee's installation height were
  // built by peers still on a previous roster (pre era switch / epoch
  // re-election). Counting them would drag this freshly reconfigured
  // committee to the old roster's view numbers and split it across views
  // that can never reconverge; the straggler gets a sync above instead.
  if (msg.last_executed < reconfigured_at_height_) return;
  auto& entries = view_changes_[msg.new_view];
  entries.emplace(from, std::move(msg));

  const ViewId candidate = view_changes_.rbegin()->first;  // highest requested view
  auto& votes = view_changes_[candidate];
  const std::size_t f = faults_tolerated();

  // A replica that sees f+1 view changes for a higher view joins in even if
  // its own timer has not fired (prevents laggards from stalling).
  if (!votes.contains(id_) && votes.size() >= f + 1) {
    pending_view_ = candidate;
    in_view_change_ = true;
    view_change_started_ = now();
    ViewChangeMsg own = build_view_change(candidate);
    const Bytes body = own.encode();
    broadcast_committee(msg_type::kViewChange, BytesView(body.data(), body.size()));
    votes.emplace(id_, std::move(own));
  }

  // New primary forms the certificate at 2f+1.
  if (primary_of(candidate) != id_ || votes.size() < 2 * f + 1) return;

  NewViewMsg new_view;
  new_view.new_view = candidate;
  for (const auto& [replica, vc] : votes) new_view.proofs.push_back(vc);
  new_view.primary = id_;

  // Re-propose the highest-view prepared proof per sequence number above
  // this primary's OWN executed height. Skipping by someone else's height
  // would be unsound: the primary would then propose a fresh block for a
  // slot another replica already executed, forking the chain. Slots the
  // primary itself executed are skipped (peers fetch them via chain sync).
  std::map<SeqNum, const PreparedProof*> best;
  for (const auto& [replica, vc] : votes) {
    for (const PreparedProof& proof : vc.prepared) {
      auto it = best.find(proof.seq);
      if (it == best.end() || proof.view > it->second->view) best[proof.seq] = &proof;
    }
  }
  for (const auto& [seq, proof] : best) {
    if (seq <= chain_.height()) continue;
    PrePrepare pp;
    pp.view = candidate;
    pp.seq = seq;
    pp.digest = proof->digest;
    pp.block = proof->block;
    new_view.preprepares.push_back(std::move(pp));
  }

  const Bytes body = new_view.encode();
  broadcast_committee(msg_type::kNewView, BytesView(body.data(), body.size()));
  enter_new_view(candidate, new_view.preprepares);
}

void Replica::on_new_view(NodeId from, const NewViewMsg& msg) {
  for (const ViewChangeMsg& vc : msg.proofs) {
    if (vc.last_executed > chain_.height()) {
      request_sync_from(from);
      break;
    }
  }
  if (msg.new_view <= view_) return;
  if (from != primary_of(msg.new_view) || msg.primary != from) return;
  const std::size_t f = faults_tolerated();
  std::set<NodeId> distinct;
  for (const ViewChangeMsg& vc : msg.proofs) {
    // Same staleness filter as on_view_change: proofs executed below the
    // current committee's installation height belong to a previous roster.
    if (vc.new_view == msg.new_view && vc.last_executed >= reconfigured_at_height_) {
      distinct.insert(vc.replica);
    }
  }
  if (distinct.size() < 2 * f + 1) return;
  enter_new_view(msg.new_view, msg.preprepares);
}

void Replica::enter_new_view(ViewId view, const std::vector<PrePrepare>& reproposals) {
  const ViewId previous = view_;
  view_ = view;
  in_view_change_ = false;
  view_changes_.erase(view_changes_.begin(), view_changes_.upper_bound(view));
  ++completed_view_changes_;
  telemetry().count("pbft.view_changes_completed", id_);
  telemetry().instant("view_change.complete", "pbft", id_, {{"view", std::to_string(view_)}});

  // Reset per-view state on uncommitted instances: votes and sent flags are
  // scoped to a view, so they must not carry over — but the durable P-set
  // fields (has_prepared / prepared_*) are deliberately KEPT, so later
  // view changes still carry the prepared value (safety; see Instance).
  // Committed-but-unexecuted instances stay untouched: their blocks are
  // fixed by a commit quorum.
  for (auto& [seq, instance] : log_) {
    if (instance.committed || instance.executed) continue;
    // Requeue the transactions so they are not lost if the new primary
    // proposes something else for this slot (dedup prevents double-commit).
    if (instance.block) {
      for (const ledger::Transaction& tx : instance.block->transactions) {
        if (!chain_.find_transaction(tx.digest())) mempool_.add(tx);
      }
    }
    instance.preprepared = false;
    instance.prepared = false;
    instance.prepare_sent = false;
    instance.commit_sent = false;
    instance.prepare_votes.clear();
    instance.commit_votes.clear();
    instance.block.reset();
    instance.digest = crypto::Hash256{};
    instance.preprepared_at = TimePoint{};
    instance.prepared_at = TimePoint{};
    instance.committed_at = TimePoint{};
  }

  // Give every pending request a fresh timeout under the new primary.
  for (auto& [digest, since] : pending_since_) since = now();

  // Any accumulating batch is abandoned: its requests are back in the
  // mempool and the new primary opens its own batch (with a fresh timer).
  reset_batch_state();

  // Process the new primary's re-proposals, then any messages that raced
  // ahead of the NEW-VIEW.
  for (const PrePrepare& pp : reproposals) on_preprepare(primary_of(view_), pp);

  const auto preprepares = std::move(stashed_preprepares_);
  stashed_preprepares_.clear();
  for (const auto& [from, pp] : preprepares) {
    if (pp.view == view_) on_preprepare(from, pp);
  }
  const auto prepares = std::move(stashed_prepares_);
  stashed_prepares_.clear();
  for (const Prepare& prepare : prepares) {
    if (prepare.view == view_) on_prepare(prepare.replica, prepare);
  }
  const auto commits = std::move(stashed_commits_);
  stashed_commits_.clear();
  for (const Commit& commit : commits) {
    if (commit.view == view_) on_commit(commit.replica, commit);
  }

  on_view_changed(previous, view_);
  maybe_propose();
}

// --- timers ----------------------------------------------------------------------

void Replica::arm_tick() {
  const Duration interval = config_.request_timeout / 4;
  schedule_protected(interval, [this]() {
    on_tick();
    if (started_) arm_tick();
  });
}

void Replica::on_tick() {
  if (network_.is_crashed(id_) || fault_mode_ == FaultMode::Silent) return;

  const TimePoint current = now();

  if (in_view_change_) {
    // Escalate if the pending view did not form in time.
    const Duration elapsed = current - view_change_started_;
    const Duration budget =
        config_.view_change_timeout * static_cast<std::int64_t>(pending_view_ - view_);
    if (elapsed > budget) initiate_view_change();
    return;
  }

  maybe_request_sync();

  if (halted_) return;

  for (const auto& [digest, since] : pending_since_) {
    if (current - since > config_.request_timeout) {
      log_debug(id_.str() + ": request " + digest.short_hex() + " pending for " +
                std::to_string((current - since).to_seconds()) +
                "s; initiating view change from view " + std::to_string(view_));
      initiate_view_change();
      return;
    }
  }
}

void Replica::reconfigure_committee(std::vector<NodeId> committee) {
  committee_ = std::move(committee);
  std::sort(committee_.begin(), committee_.end());
  view_ = 0;
  reconfigured_at_height_ = chain_.height();
  in_view_change_ = false;
  pending_view_ = 0;
  view_changes_.clear();
  stashed_preprepares_.clear();
  stashed_prepares_.clear();
  stashed_commits_.clear();

  // Abandon in-flight instances; their transactions return to the mempool.
  for (auto it = log_.begin(); it != log_.end();) {
    Instance& instance = it->second;
    if (!instance.executed) {
      if (instance.block) {
        for (const ledger::Transaction& tx : instance.block->transactions) {
          if (!chain_.find_transaction(tx.digest())) mempool_.add(tx);
        }
      }
      it = log_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [digest, since] : pending_since_) since = now();
  reset_batch_state();  // era switch: the new roster's primary re-batches
}

}  // namespace gpbft::pbft
