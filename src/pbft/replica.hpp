// PBFT replica (Castro & Liskov, OSDI'99), adapted to blockchain batching.
//
// The primary of the current view drains the mempool into a block proposal
// and drives the three-phase protocol:
//
//   PRE-PREPARE -> PREPARE (2f matching) -> COMMIT (2f+1 matching) -> execute
//
// Execution appends the block to the replica's chain, applies state, and
// sends a REPLY to each transaction's sender; clients accept f+1 matching
// replies. View changes fire on request timeouts; checkpoints garbage-
// collect the instance log every checkpoint_interval executions.
//
// One consensus instance is in flight at a time (sequence number == block
// height), because each block links to its predecessor's hash. Pending
// transactions queue in the mempool — this receiver-side queueing is what
// produces the latency growth the paper measures for plain PBFT.
//
// The class exposes protected hooks (select_batch, primary_of, current_era,
// on_executed, handle_extra, halted) through which gpbft::Endorser layers
// the era/election machinery on top without duplicating the state machine.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "crypto/authenticator.hpp"
#include "ledger/chain.hpp"
#include "ledger/mempool.hpp"
#include "ledger/state.hpp"
#include "net/network.hpp"
#include "pbft/client_table.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"

namespace gpbft::pbft {

class Replica : public net::INetNode {
 public:
  using ExecutedCallback = std::function<void(const ledger::Block&)>;
  using PersistCallback = std::function<void(const ledger::Chain&)>;

  Replica(NodeId id, std::vector<NodeId> committee, ledger::Block genesis, PbftConfig config,
          net::Network& network, const crypto::KeyRegistry& keys);
  ~Replica() override = default;

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Attaches to the network and arms the timeout tick. Call once.
  void start();

  /// Stops rescheduling the timeout tick so a simulation can drain to idle.
  void stop() { started_ = false; }

  // --- INetNode --------------------------------------------------------------
  [[nodiscard]] NodeId id() const override { return id_; }
  void handle(const net::Envelope& envelope) override;

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] const ledger::Chain& chain() const { return chain_; }
  [[nodiscard]] const ledger::State& state() const { return state_; }
  [[nodiscard]] ViewId view() const { return view_; }
  [[nodiscard]] const std::vector<NodeId>& committee() const { return committee_; }
  [[nodiscard]] bool is_primary() const { return primary_of(view_) == id_; }
  [[nodiscard]] std::size_t faults_tolerated() const { return (committee_.size() - 1) / 3; }
  [[nodiscard]] std::uint64_t executed_blocks() const { return executed_blocks_; }
  [[nodiscard]] std::uint64_t completed_view_changes() const { return completed_view_changes_; }
  [[nodiscard]] std::size_t mempool_size() const { return mempool_.size(); }
  [[nodiscard]] SeqNum stable_checkpoint() const { return stable_seq_; }
  /// Per-client last-executed-request bookkeeping (reply cache fast path).
  [[nodiscard]] const ClientTable& client_table() const { return client_table_; }

  /// Primary of a view; round-robin over the committee roster by default,
  /// overridden by G-PBFT's geographic-timer weighting.
  [[nodiscard]] virtual NodeId primary_of(ViewId view) const;

  // --- knobs -------------------------------------------------------------------
  void set_fault_mode(FaultMode mode) { fault_mode_ = mode; }
  void set_executed_callback(ExecutedCallback cb) { executed_cb_ = std::move(cb); }

  /// Durability hook: invoked with the chain whenever the replica reaches a
  /// point worth persisting — a stable checkpoint, an executed configuration
  /// block, or adopted sync progress. The deployment layer wires this to the
  /// node's simulated disk.
  void set_persist_callback(PersistCallback cb) { persist_cb_ = std::move(cb); }

  /// Active catch-up after a restart: immediately requests the chain suffix
  /// from the primary plus a rotating alternate, bypassing the evidence
  /// gating of maybe_request_sync (a freshly rebuilt node holds no commit
  /// votes to prove it is behind), and retries a bounded number of times
  /// until the chain advances.
  void begin_resync();

  /// Replays a persisted chain (from deserialize_chain) through the normal
  /// execution path, before start(): protocol state — eras, rosters,
  /// election bookkeeping in subclasses — re-derives via on_executed.
  /// The restored prefix was only ever persisted at agreed durability
  /// points, so it is treated as stable (the watermark window opens above
  /// it). Stops at the first invalid block, keeping what came before.
  [[nodiscard]] Result<void> restore_chain(const ledger::Chain& restored);

 protected:
  // Hooks for the G-PBFT layer -------------------------------------------------
  /// Batch selection for the next proposal; default drains the mempool.
  [[nodiscard]] virtual std::vector<ledger::Transaction> select_batch();
  /// Gate on spontaneous proposals; dBFT's pacing overrides this so blocks
  /// are produced on a fixed cadence instead of as soon as requests queue.
  [[nodiscard]] virtual bool ready_to_propose() const { return true; }
  /// Attempts a proposal if this replica is the primary, a batch exists,
  /// and ready_to_propose() allows it.
  void maybe_propose();
  /// Era stamped into produced blocks (always 0 for plain PBFT).
  [[nodiscard]] virtual EraId current_era() const { return 0; }
  /// Called after a block is appended and applied.
  virtual void on_executed(const ledger::Block& block);
  /// Messages the base protocol does not know (geo reports, era control).
  virtual void handle_extra(const net::Envelope& envelope);
  /// Called when a view change completes; `previous` is the abandoned view
  /// (its primary failed to make progress — G-PBFT penalizes it, §III-B5).
  virtual void on_view_changed(ViewId previous, ViewId current);

  /// While halted (era switch period, §III-E) the replica neither proposes
  /// nor accepts pre-prepares; era-switch machinery drives commits directly.
  void set_halted(bool halted) { halted_ = halted; }
  [[nodiscard]] bool halted() const { return halted_; }

  /// Reconfigures the roster (era switch): resets view/in-flight bookkeeping
  /// while keeping chain, state and mempool. `view` restarts at 0.
  void reconfigure_committee(std::vector<NodeId> committee);

  /// Proposes a specific batch immediately if this replica is the primary
  /// and no instance is in flight (used for configuration blocks).
  bool propose_batch(std::vector<ledger::Transaction> batch);

  void send_to(NodeId to, net::MessageType type, BytesView body);
  void broadcast_committee(net::MessageType type, BytesView body);
  /// Fan-out to an arbitrary peer set (self is skipped). With MACs off the
  /// sealed bytes are receiver-independent, so the body is sealed once and
  /// every envelope refcounts the same buffer; with MACs on it falls back
  /// to per-receiver seals. Subclasses use this for gossip loops.
  void send_to_each(const std::vector<NodeId>& peers, net::MessageType type, BytesView body);

  /// Schedules `fn` guarded by this replica's lifetime token: if the object
  /// is destroyed before the event fires (restart_node rebuilds a node from
  /// disk), the callback is dropped instead of dereferencing freed memory.
  /// Every protocol timer in this class and its subclasses must use this
  /// rather than scheduling a bare `[this]` lambda.
  void schedule_protected(Duration delay, std::function<void()> fn);

  /// Invokes the persist callback with the current chain, if one is set
  /// (exposed so subclasses can persist on their own durability points,
  /// e.g. dBFT's per-block finality).
  void persist_now();

  [[nodiscard]] TimePoint now() const { return network_.simulator().now(); }
  [[nodiscard]] net::Network& network() { return network_; }
  /// The deployment's telemetry sink (metrics always-on, tracing opt-in);
  /// the network's default is the process-wide disabled instance.
  [[nodiscard]] obs::Telemetry& telemetry() { return network_.telemetry(); }
  [[nodiscard]] const crypto::KeyRegistry& keys() const { return keys_; }
  [[nodiscard]] const PbftConfig& config() const { return config_; }
  [[nodiscard]] ledger::Mempool& mempool() { return mempool_; }
  [[nodiscard]] bool in_view_change() const { return in_view_change_; }
  /// Injected Byzantine behaviour, visible to subclasses so the G-PBFT
  /// layer can drive geo-plane attacks (SybilGeoReports) from its timers.
  [[nodiscard]] FaultMode fault_mode() const { return fault_mode_; }

  /// Enqueues a request locally (also used by the G-PBFT layer when it
  /// generates configuration transactions).
  void accept_request(ledger::Transaction tx);

  /// Fast-forwards the chain with validated blocks (state transfer for an
  /// endorser joining mid-chain at an era switch). Stops at the first
  /// invalid block and reports it.
  [[nodiscard]] Result<void> adopt_chain_suffix(const std::vector<ledger::Block>& blocks);

 private:
  // One consensus instance (one block height).
  struct Instance {
    ViewId view{0};
    crypto::Hash256 digest;
    std::optional<ledger::Block> block;
    bool preprepared{false};
    bool prepared{false};
    bool committed{false};
    bool executed{false};
    bool prepare_sent{false};
    bool commit_sent{false};

    // Phase timestamps (simulated clock) for telemetry: when this replica
    // accepted the pre-prepare, formed its prepare certificate, and formed
    // its commit certificate. Valid only while `preprepared` is set in the
    // current view (reset with the other per-view state).
    TimePoint preprepared_at{};
    TimePoint prepared_at{};
    TimePoint committed_at{};
    // Votes are keyed by digest and scoped to the current view (cleared at
    // view entry; messages from other views are stashed or dropped). A
    // certificate is therefore always "2f(+1) same-view same-digest votes",
    // the form PBFT's quorum-intersection safety argument requires. Votes
    // arriving before the PRE-PREPARE park under their digest.
    std::map<crypto::Hash256, std::set<NodeId>> prepare_votes;
    std::map<crypto::Hash256, std::set<NodeId>> commit_votes;

    // Durable P-set entry (Castro-Liskov §4.4): once an instance prepares,
    // the (view, digest, block) it prepared with must survive view changes
    // — every later VIEW-CHANGE message carries it, which is what makes a
    // committed value impossible to forget (quorum-intersection argument).
    // Vote sets above are per-view and reset on view entry; this is not.
    bool has_prepared{false};
    ViewId prepared_view{0};
    crypto::Hash256 prepared_digest;
    std::optional<ledger::Block> prepared_block;
  };

  // Message handlers.
  void on_preprepare(NodeId from, const PrePrepare& msg);
  void on_prepare(NodeId from, const Prepare& msg);
  void on_commit(NodeId from, const Commit& msg);
  void on_checkpoint(NodeId from, const CheckpointMsg& msg);
  void on_view_change(NodeId from, ViewChangeMsg msg);
  void on_new_view(NodeId from, const NewViewMsg& msg);

  void try_prepare(SeqNum seq);
  void try_commit(SeqNum seq);
  void try_execute();
  void send_prepare(SeqNum seq, const Instance& instance);
  void send_commit(SeqNum seq, const Instance& instance);
  void maybe_checkpoint();

  void initiate_view_change();
  void enter_new_view(ViewId view, const std::vector<PrePrepare>& reproposals);
  [[nodiscard]] ViewChangeMsg build_view_change(ViewId new_view) const;

  // Chain sync (see SyncRequest in messages.hpp).
  void maybe_request_sync();
  void request_sync_from(NodeId peer);
  void send_sync_request(NodeId peer);
  void on_sync_request(const SyncRequest& msg);
  void on_sync_response(const SyncResponse& msg);
  void resync_tick();

  void arm_tick();
  void on_tick();

  /// Schedules the batch-close deadline for the currently accumulating
  /// batch (batch_close_size > 1 only). At most one live timer per batch
  /// epoch; stale timers no-op via the epoch check.
  void arm_batch_timer();
  /// Closes any accumulating batch without proposing it (view changes and
  /// era switches hand the buffered requests to the next primary).
  void reset_batch_state();

  [[nodiscard]] bool seq_in_window(SeqNum seq) const;
  /// Opens the envelope (consuming a parallel-plane verdict when present);
  /// the returned view borrows from the envelope, valid within handle().
  [[nodiscard]] Result<BytesView> open_or_drop(const net::Envelope& envelope);

  /// True when seals should be deferred to the parallel MAC plane: MACs are
  /// on (so sealing costs real HMAC work) and worker threads exist to
  /// absorb it. The eager path is kept byte-identical, so this is purely a
  /// scheduling choice.
  [[nodiscard]] bool lazy_seal_active() const {
    return config_.compute_macs && network_.mac_plane_active();
  }
  /// Sends one lazily sealed envelope; `body` is shared so a broadcast
  /// fan-out captures one buffer across all per-receiver seal closures.
  void send_sealed_lazy(NodeId to, net::MessageType type,
                        const std::shared_ptr<const Bytes>& body);

  NodeId id_;
  std::vector<NodeId> committee_;
  PbftConfig config_;
  net::Network& network_;
  const crypto::KeyRegistry& keys_;

  ledger::Chain chain_;
  ledger::State state_;
  ledger::Mempool mempool_;

  ViewId view_{0};
  bool halted_{false};
  bool started_{false};

  // Height at which the current committee was installed (0 = genesis
  // roster). Consensus wire messages carry no era tag, so a peer's
  // advertised execution height is the staleness proxy: view-change votes
  // executed below this height were built under a previous roster and must
  // not steer the reconfigured committee's view numbering.
  Height reconfigured_at_height_{0};

  std::map<SeqNum, Instance> log_;
  SeqNum stable_seq_{0};

  // Checkpoint votes: seq -> digest -> voters.
  std::map<SeqNum, std::map<crypto::Hash256, std::set<NodeId>>> checkpoint_votes_;

  // View change state.
  bool in_view_change_{false};
  ViewId pending_view_{0};
  TimePoint view_change_started_{};
  std::map<ViewId, std::map<NodeId, ViewChangeMsg>> view_changes_;

  // Request timeout tracking: tx digest -> first seen.
  std::unordered_map<crypto::Hash256, TimePoint> pending_since_;

  // Per-client reply cache (see client_table.hpp); rebuilt by execution,
  // including restore/sync adoption, so a restarted replica serves the same
  // cached replies it did before the crash.
  ClientTable client_table_;

  // Batch accumulation (batch_close_size > 1): when the open batch's first
  // request queued (nullopt = no batch open), and an epoch counter bumped
  // at every close/abandon so in-flight close timers can detect they are
  // stale. batch_timer_epoch_ records the epoch a timer is armed for —
  // at most one live timer per epoch (the simulator cannot cancel events).
  std::optional<TimePoint> batch_opened_at_;
  std::uint64_t batch_epoch_{0};
  std::uint64_t batch_timer_epoch_{~std::uint64_t{0}};

  // Out-of-order buffering: a new primary's PRE-PREPARE can overtake its
  // NEW-VIEW on a jittery network; messages for a future view (or arriving
  // mid-view-change) are stashed and replayed when the view settles.
  static constexpr std::size_t kMaxStashed = 256;
  std::vector<std::pair<NodeId, PrePrepare>> stashed_preprepares_;
  std::vector<Prepare> stashed_prepares_;
  std::vector<Commit> stashed_commits_;

  /// Largest number of blocks served per SyncResponse; a full response is
  /// the signal that more blocks remain and the requester should chain a
  /// follow-up request.
  static constexpr Height kMaxSyncBlocks = 64;

  /// When the last sync request was sent; nullopt until the first one (so a
  /// fresh replica is never rate-limited by a sentinel "long ago" value).
  std::optional<TimePoint> last_sync_request_;

  /// Bounded post-restart catch-up attempts remaining (see begin_resync).
  static constexpr std::uint32_t kResyncAttempts = 5;
  std::uint32_t resync_attempts_left_{0};

  FaultMode fault_mode_{FaultMode::None};
  ExecutedCallback executed_cb_;
  PersistCallback persist_cb_;

  std::uint64_t executed_blocks_{0};
  std::uint64_t completed_view_changes_{0};

  /// Lifetime token for scheduled timers: the simulator cannot cancel
  /// events, so every timer lambda holds a weak_ptr to this and becomes a
  /// no-op once the replica is destroyed (crash–restart rebuilds objects).
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
};

}  // namespace gpbft::pbft
