// PBFT wire messages (Castro & Liskov, OSDI'99) plus the G-PBFT additions.
//
// Every message body is encoded with the serde codec and sealed with a
// pairwise HMAC authenticator for its receiver (crypto/authenticator.hpp).
// The seal/open helpers implement that framing uniformly, so byte counts on
// the simulated wire include realistic authentication overhead.
#pragma once

#include <vector>

#include "common/result.hpp"
#include "crypto/authenticator.hpp"
#include "ledger/block.hpp"
#include "net/message.hpp"

namespace gpbft::pbft {

// Message-type registry for the whole protocol family. G-PBFT types live
// here too so traffic accounting sees one flat namespace.
namespace msg_type {
inline constexpr net::MessageType kClientRequest = 1;
inline constexpr net::MessageType kPrePrepare = 2;
inline constexpr net::MessageType kPrepare = 3;
inline constexpr net::MessageType kCommit = 4;
inline constexpr net::MessageType kReply = 5;
inline constexpr net::MessageType kCheckpoint = 6;
inline constexpr net::MessageType kViewChange = 7;
inline constexpr net::MessageType kNewView = 8;
inline constexpr net::MessageType kSyncRequest = 9;
inline constexpr net::MessageType kSyncResponse = 10;
// --- G-PBFT (§III of the paper) ---
inline constexpr net::MessageType kGeoReport = 20;
inline constexpr net::MessageType kEraHalt = 21;
inline constexpr net::MessageType kEraLaunch = 22;
}  // namespace msg_type

[[nodiscard]] const char* message_type_name(net::MessageType type);

// --- bodies -----------------------------------------------------------------

struct ClientRequest {
  ledger::Transaction transaction;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<ClientRequest> decode(BytesView data);
};

struct PrePrepare {
  ViewId view{0};
  SeqNum seq{0};
  crypto::Hash256 digest;  // hash of the proposed block
  ledger::Block block;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<PrePrepare> decode(BytesView data);
};

struct Prepare {
  ViewId view{0};
  SeqNum seq{0};
  crypto::Hash256 digest;
  NodeId replica;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Prepare> decode(BytesView data);
};

struct Commit {
  ViewId view{0};
  SeqNum seq{0};
  crypto::Hash256 digest;
  NodeId replica;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Commit> decode(BytesView data);
};

/// Reply sent to the transaction's sender once its block executes.
struct Reply {
  ViewId view{0};
  NodeId replica;
  crypto::Hash256 tx_digest;
  Height height{0};  // chain height at which the transaction landed

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<Reply> decode(BytesView data);
};

struct CheckpointMsg {
  SeqNum seq{0};
  crypto::Hash256 chain_digest;  // hash of the chain tip at that checkpoint
  NodeId replica;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<CheckpointMsg> decode(BytesView data);
};

/// Proof that an instance prepared in some view (carried in VIEW-CHANGE).
struct PreparedProof {
  ViewId view{0};
  SeqNum seq{0};
  crypto::Hash256 digest;
  ledger::Block block;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<PreparedProof> decode(BytesView data);
};

struct ViewChangeMsg {
  ViewId new_view{0};
  SeqNum last_executed{0};
  std::vector<PreparedProof> prepared;
  NodeId replica;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<ViewChangeMsg> decode(BytesView data);
};

struct NewViewMsg {
  ViewId new_view{0};
  std::vector<ViewChangeMsg> proofs;       // the 2f+1 view-change certificate
  std::vector<PrePrepare> preprepares;     // re-proposals for prepared instances
  NodeId primary;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<NewViewMsg> decode(BytesView data);
};

/// Chain-sync: a replica that observes f+1 COMMITs for a height it cannot
/// execute (it missed the proposal — e.g. it joined the committee while the
/// PRE-PREPARE was in flight, or messages were dropped) fetches the missing
/// blocks from a peer. Responses are validated against the chain's hash
/// linkage and any locally held commit certificates before adoption.
struct SyncRequest {
  Height from_height{0};
  NodeId requester;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<SyncRequest> decode(BytesView data);
};

struct SyncResponse {
  std::vector<ledger::Block> blocks;
  NodeId responder;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<SyncResponse> decode(BytesView data);
};

// --- G-PBFT bodies ----------------------------------------------------------

/// Periodic location upload (§III-B3): the device's CSC cell and coordinates.
struct GeoReportMsg {
  NodeId device;
  double latitude{0};
  double longitude{0};
  TimePoint reported_at;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<GeoReportMsg> decode(BytesView data);
};

/// Era-switch control messages (§III-E): the lead endorser announces a halt,
/// then — once the configuration block commits — the launch of the new era.
struct EraHaltMsg {
  EraId closing_era{0};
  NodeId sender;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<EraHaltMsg> decode(BytesView data);
};

struct EraLaunchMsg {
  ledger::EraConfig config;
  Height config_height{0};  // height of the block carrying the config tx
  NodeId sender;

  /// State transfer for members joining mid-chain: the blocks the receiver
  /// is missing. Empty for members that followed the chain themselves. The
  /// bytes are accounted on the simulated wire like any other traffic.
  std::vector<ledger::Block> blocks;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<EraLaunchMsg> decode(BytesView data);
};

// --- sealing ----------------------------------------------------------------

/// Appends the sender's HMAC tag for `receiver` to `body`. When
/// `compute_macs` is false the tag bytes are still appended (zeroed) so
/// wire sizes are identical; open() skips verification symmetrically.
///
/// The MAC binds the envelope's MessageType alongside the body: Prepare and
/// Commit share one field layout, so a tag over the body alone would let an
/// in-flight adversary retype a genuine Prepare into a forged Commit (or
/// any other same-layout confusion) without breaking verification. The type
/// rides in the envelope header, not the payload, so binding it costs no
/// wire bytes.
[[nodiscard]] Bytes seal(const crypto::KeyRegistry& keys, NodeId sender, NodeId receiver,
                         net::MessageType type, BytesView body, bool compute_macs);

/// Exact wire size of seal()'s output for a body of `body_len` bytes,
/// without computing the tag: varint length prefix + body + 8-byte sender
/// + 8-byte tag. Lets the lazy-seal send path account bytes (and the
/// network draw transmission delays) before any HMAC runs.
[[nodiscard]] constexpr std::size_t sealed_size(std::size_t body_len) {
  std::size_t prefix = 1;
  for (std::size_t v = body_len; v >= 0x80; v >>= 7) ++prefix;
  return prefix + body_len + 8 + 8;
}

/// Splits and verifies a sealed payload; returns the body on success.
[[nodiscard]] Result<Bytes> open(const crypto::KeyRegistry& keys, NodeId sender, NodeId receiver,
                                 net::MessageType type, BytesView sealed, bool compute_macs);

/// As open(), but returns a view of the body *inside* `sealed` — valid only
/// while the sealed bytes live. The per-delivery hot path: handlers decode
/// straight out of the arrival buffer instead of paying an allocation and
/// copy per message.
[[nodiscard]] Result<BytesView> open_view(const crypto::KeyRegistry& keys, NodeId sender,
                                          NodeId receiver, net::MessageType type, BytesView sealed,
                                          bool compute_macs);

/// Opens an envelope, consuming its parallel-plane verdict when one is
/// attached (net::OpenJob, published by the ordered runner before the
/// handler ran) and falling back to a synchronous open_view otherwise —
/// tamper-injected ghosts and bare-network tests take the fallback. A
/// verdict computed with MACs on also satisfies a compute_macs=false open
/// (framing is a subset of verification). The returned view borrows from
/// the envelope (job body or payload buffer): use it within the handler.
[[nodiscard]] Result<BytesView> open_envelope(const crypto::KeyRegistry& keys, NodeId receiver,
                                              const net::Envelope& envelope, bool compute_macs);

}  // namespace gpbft::pbft
