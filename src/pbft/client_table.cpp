#include "pbft/client_table.hpp"

namespace gpbft::pbft {

void ClientTable::note_executed(const ledger::Transaction& tx, Height height) {
  Entry& entry = entries_[tx.sender.value];
  if (entry.last_height != 0 && tx.request_id < entry.last_request_id) return;
  entry.last_request_id = tx.request_id;
  entry.last_digest = tx.digest();
  entry.last_height = height;
}

const ClientTable::Entry* ClientTable::find(NodeId sender) const {
  const auto it = entries_.find(sender.value);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace gpbft::pbft
