#include "pbft/messages.hpp"

#include <array>
#include <cassert>
#include <span>

#include "obs/profiler.hpp"

#include "serde/reader.hpp"
#include "serde/writer.hpp"

namespace gpbft::pbft {

namespace {

void put_hash(serde::Writer& w, const crypto::Hash256& h) { w.raw(h.view()); }

Result<crypto::Hash256> get_hash(serde::Reader& r) {
  auto raw = r.raw(32);
  if (!raw) return make_error(raw.error());
  crypto::Hash256 h;
  std::copy(raw.value().begin(), raw.value().end(), h.bytes.begin());
  return h;
}

void put_block(serde::Writer& w, const ledger::Block& block) {
  const Bytes encoded = block.encode();
  w.bytes(BytesView(encoded.data(), encoded.size()));
}

Result<ledger::Block> get_block(serde::Reader& r) {
  auto raw = r.bytes();
  if (!raw) return make_error(raw.error());
  return ledger::Block::decode(BytesView(raw.value().data(), raw.value().size()));
}

}  // namespace

const char* message_type_name(net::MessageType type) {
  switch (type) {
    case msg_type::kClientRequest: return "REQUEST";
    case msg_type::kPrePrepare: return "PRE-PREPARE";
    case msg_type::kPrepare: return "PREPARE";
    case msg_type::kCommit: return "COMMIT";
    case msg_type::kReply: return "REPLY";
    case msg_type::kCheckpoint: return "CHECKPOINT";
    case msg_type::kViewChange: return "VIEW-CHANGE";
    case msg_type::kNewView: return "NEW-VIEW";
    case msg_type::kSyncRequest: return "SYNC-REQUEST";
    case msg_type::kSyncResponse: return "SYNC-RESPONSE";
    case msg_type::kGeoReport: return "GEO-REPORT";
    case msg_type::kEraHalt: return "ERA-HALT";
    case msg_type::kEraLaunch: return "ERA-LAUNCH";
    default: return "UNKNOWN";
  }
}

// --- ClientRequest ----------------------------------------------------------

Bytes ClientRequest::encode() const { return transaction.encode(); }

Result<ClientRequest> ClientRequest::decode(BytesView data) {
  auto tx = ledger::Transaction::decode(data);
  if (!tx) return make_error(tx.error());
  return ClientRequest{std::move(tx.value())};
}

// --- PrePrepare ---------------------------------------------------------------

Bytes PrePrepare::encode() const {
  serde::Writer w;
  w.u64(view);
  w.u64(seq);
  put_hash(w, digest);
  put_block(w, block);
  return w.take();
}

Result<PrePrepare> PrePrepare::decode(BytesView data) {
  serde::Reader r(data);
  PrePrepare m;
  auto view = r.u64();
  if (!view) return make_error(view.error());
  m.view = view.value();
  auto seq = r.u64();
  if (!seq) return make_error(seq.error());
  m.seq = seq.value();
  auto digest = get_hash(r);
  if (!digest) return make_error(digest.error());
  m.digest = digest.value();
  auto block = get_block(r);
  if (!block) return make_error(block.error());
  m.block = std::move(block.value());
  if (!r.exhausted()) return make_error("pre-prepare: trailing bytes");
  return m;
}

// --- Prepare / Commit ---------------------------------------------------------

namespace {
template <typename T>
Bytes encode_vote(const T& m) {
  serde::Writer w;
  w.u64(m.view);
  w.u64(m.seq);
  put_hash(w, m.digest);
  w.u64(m.replica.value);
  return w.take();
}

template <typename T>
Result<T> decode_vote(BytesView data, const char* what) {
  serde::Reader r(data);
  T m;
  auto view = r.u64();
  if (!view) return make_error(view.error());
  m.view = view.value();
  auto seq = r.u64();
  if (!seq) return make_error(seq.error());
  m.seq = seq.value();
  auto digest = get_hash(r);
  if (!digest) return make_error(digest.error());
  m.digest = digest.value();
  auto replica = r.u64();
  if (!replica) return make_error(replica.error());
  m.replica = NodeId{replica.value()};
  if (!r.exhausted()) return make_error(std::string(what) + ": trailing bytes");
  return m;
}
}  // namespace

Bytes Prepare::encode() const { return encode_vote(*this); }
Result<Prepare> Prepare::decode(BytesView data) { return decode_vote<Prepare>(data, "prepare"); }

Bytes Commit::encode() const { return encode_vote(*this); }
Result<Commit> Commit::decode(BytesView data) { return decode_vote<Commit>(data, "commit"); }

// --- Reply --------------------------------------------------------------------

Bytes Reply::encode() const {
  serde::Writer w;
  w.u64(view);
  w.u64(replica.value);
  put_hash(w, tx_digest);
  w.u64(height);
  return w.take();
}

Result<Reply> Reply::decode(BytesView data) {
  serde::Reader r(data);
  Reply m;
  auto view = r.u64();
  if (!view) return make_error(view.error());
  m.view = view.value();
  auto replica = r.u64();
  if (!replica) return make_error(replica.error());
  m.replica = NodeId{replica.value()};
  auto digest = get_hash(r);
  if (!digest) return make_error(digest.error());
  m.tx_digest = digest.value();
  auto height = r.u64();
  if (!height) return make_error(height.error());
  m.height = height.value();
  if (!r.exhausted()) return make_error("reply: trailing bytes");
  return m;
}

// --- Checkpoint -----------------------------------------------------------------

Bytes CheckpointMsg::encode() const {
  serde::Writer w;
  w.u64(seq);
  put_hash(w, chain_digest);
  w.u64(replica.value);
  return w.take();
}

Result<CheckpointMsg> CheckpointMsg::decode(BytesView data) {
  serde::Reader r(data);
  CheckpointMsg m;
  auto seq = r.u64();
  if (!seq) return make_error(seq.error());
  m.seq = seq.value();
  auto digest = get_hash(r);
  if (!digest) return make_error(digest.error());
  m.chain_digest = digest.value();
  auto replica = r.u64();
  if (!replica) return make_error(replica.error());
  m.replica = NodeId{replica.value()};
  if (!r.exhausted()) return make_error("checkpoint: trailing bytes");
  return m;
}

// --- PreparedProof ----------------------------------------------------------------

Bytes PreparedProof::encode() const {
  serde::Writer w;
  w.u64(view);
  w.u64(seq);
  put_hash(w, digest);
  put_block(w, block);
  return w.take();
}

Result<PreparedProof> PreparedProof::decode(BytesView data) {
  serde::Reader r(data);
  PreparedProof m;
  auto view = r.u64();
  if (!view) return make_error(view.error());
  m.view = view.value();
  auto seq = r.u64();
  if (!seq) return make_error(seq.error());
  m.seq = seq.value();
  auto digest = get_hash(r);
  if (!digest) return make_error(digest.error());
  m.digest = digest.value();
  auto block = get_block(r);
  if (!block) return make_error(block.error());
  m.block = std::move(block.value());
  if (!r.exhausted()) return make_error("prepared-proof: trailing bytes");
  return m;
}

// --- ViewChange -----------------------------------------------------------------

Bytes ViewChangeMsg::encode() const {
  serde::Writer w;
  w.u64(new_view);
  w.u64(last_executed);
  w.varint(prepared.size());
  for (const PreparedProof& proof : prepared) {
    const Bytes encoded = proof.encode();
    w.bytes(BytesView(encoded.data(), encoded.size()));
  }
  w.u64(replica.value);
  return w.take();
}

Result<ViewChangeMsg> ViewChangeMsg::decode(BytesView data) {
  serde::Reader r(data);
  ViewChangeMsg m;
  auto new_view = r.u64();
  if (!new_view) return make_error(new_view.error());
  m.new_view = new_view.value();
  auto last_exec = r.u64();
  if (!last_exec) return make_error(last_exec.error());
  m.last_executed = last_exec.value();
  auto count = r.varint();
  if (!count) return make_error(count.error());
  if (count.value() > 10'000) return make_error("view-change: too many proofs");
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto raw = r.bytes();
    if (!raw) return make_error(raw.error());
    auto proof = PreparedProof::decode(BytesView(raw.value().data(), raw.value().size()));
    if (!proof) return make_error(proof.error());
    m.prepared.push_back(std::move(proof.value()));
  }
  auto replica = r.u64();
  if (!replica) return make_error(replica.error());
  m.replica = NodeId{replica.value()};
  if (!r.exhausted()) return make_error("view-change: trailing bytes");
  return m;
}

// --- NewView --------------------------------------------------------------------

Bytes NewViewMsg::encode() const {
  serde::Writer w;
  w.u64(new_view);
  w.varint(proofs.size());
  for (const ViewChangeMsg& proof : proofs) {
    const Bytes encoded = proof.encode();
    w.bytes(BytesView(encoded.data(), encoded.size()));
  }
  w.varint(preprepares.size());
  for (const PrePrepare& pp : preprepares) {
    const Bytes encoded = pp.encode();
    w.bytes(BytesView(encoded.data(), encoded.size()));
  }
  w.u64(primary.value);
  return w.take();
}

Result<NewViewMsg> NewViewMsg::decode(BytesView data) {
  serde::Reader r(data);
  NewViewMsg m;
  auto new_view = r.u64();
  if (!new_view) return make_error(new_view.error());
  m.new_view = new_view.value();

  auto proof_count = r.varint();
  if (!proof_count) return make_error(proof_count.error());
  if (proof_count.value() > 10'000) return make_error("new-view: too many proofs");
  for (std::uint64_t i = 0; i < proof_count.value(); ++i) {
    auto raw = r.bytes();
    if (!raw) return make_error(raw.error());
    auto vc = ViewChangeMsg::decode(BytesView(raw.value().data(), raw.value().size()));
    if (!vc) return make_error(vc.error());
    m.proofs.push_back(std::move(vc.value()));
  }

  auto pp_count = r.varint();
  if (!pp_count) return make_error(pp_count.error());
  if (pp_count.value() > 10'000) return make_error("new-view: too many pre-prepares");
  for (std::uint64_t i = 0; i < pp_count.value(); ++i) {
    auto raw = r.bytes();
    if (!raw) return make_error(raw.error());
    auto pp = PrePrepare::decode(BytesView(raw.value().data(), raw.value().size()));
    if (!pp) return make_error(pp.error());
    m.preprepares.push_back(std::move(pp.value()));
  }

  auto primary = r.u64();
  if (!primary) return make_error(primary.error());
  m.primary = NodeId{primary.value()};
  if (!r.exhausted()) return make_error("new-view: trailing bytes");
  return m;
}

// --- chain sync -------------------------------------------------------------------

Bytes SyncRequest::encode() const {
  serde::Writer w;
  w.u64(from_height);
  w.u64(requester.value);
  return w.take();
}

Result<SyncRequest> SyncRequest::decode(BytesView data) {
  serde::Reader r(data);
  SyncRequest m;
  auto from = r.u64();
  if (!from) return make_error(from.error());
  m.from_height = from.value();
  auto requester = r.u64();
  if (!requester) return make_error(requester.error());
  m.requester = NodeId{requester.value()};
  if (!r.exhausted()) return make_error("sync-request: trailing bytes");
  return m;
}

Bytes SyncResponse::encode() const {
  serde::Writer w;
  w.varint(blocks.size());
  for (const ledger::Block& block : blocks) {
    const Bytes encoded = block.encode();
    w.bytes(BytesView(encoded.data(), encoded.size()));
  }
  w.u64(responder.value);
  return w.take();
}

Result<SyncResponse> SyncResponse::decode(BytesView data) {
  serde::Reader r(data);
  SyncResponse m;
  auto count = r.varint();
  if (!count) return make_error(count.error());
  if (count.value() > 100'000) return make_error("sync-response: too many blocks");
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto raw = r.bytes();
    if (!raw) return make_error(raw.error());
    auto block = ledger::Block::decode(BytesView(raw.value().data(), raw.value().size()));
    if (!block) return make_error(block.error());
    m.blocks.push_back(std::move(block.value()));
  }
  auto responder = r.u64();
  if (!responder) return make_error(responder.error());
  m.responder = NodeId{responder.value()};
  if (!r.exhausted()) return make_error("sync-response: trailing bytes");
  return m;
}

// --- G-PBFT bodies ---------------------------------------------------------------

Bytes GeoReportMsg::encode() const {
  serde::Writer w;
  w.u64(device.value);
  w.f64(latitude);
  w.f64(longitude);
  w.i64(reported_at.ns);
  return w.take();
}

Result<GeoReportMsg> GeoReportMsg::decode(BytesView data) {
  serde::Reader r(data);
  GeoReportMsg m;
  auto device = r.u64();
  if (!device) return make_error(device.error());
  m.device = NodeId{device.value()};
  auto lat = r.f64();
  if (!lat) return make_error(lat.error());
  m.latitude = lat.value();
  auto lng = r.f64();
  if (!lng) return make_error(lng.error());
  m.longitude = lng.value();
  auto ts = r.i64();
  if (!ts) return make_error(ts.error());
  m.reported_at = TimePoint{ts.value()};
  if (!r.exhausted()) return make_error("geo-report: trailing bytes");
  return m;
}

Bytes EraHaltMsg::encode() const {
  serde::Writer w;
  w.u64(closing_era);
  w.u64(sender.value);
  return w.take();
}

Result<EraHaltMsg> EraHaltMsg::decode(BytesView data) {
  serde::Reader r(data);
  EraHaltMsg m;
  auto era = r.u64();
  if (!era) return make_error(era.error());
  m.closing_era = era.value();
  auto sender = r.u64();
  if (!sender) return make_error(sender.error());
  m.sender = NodeId{sender.value()};
  if (!r.exhausted()) return make_error("era-halt: trailing bytes");
  return m;
}

Bytes EraLaunchMsg::encode() const {
  serde::Writer w;
  w.u64(config.era);
  w.varint(config.endorsers.size());
  for (NodeId id : config.endorsers) w.u64(id.value);
  w.varint(config.cells.size());
  for (const std::string& cell : config.cells) w.string(cell);
  w.u64(config_height);
  w.u64(sender.value);
  w.varint(blocks.size());
  for (const ledger::Block& block : blocks) {
    const Bytes encoded = block.encode();
    w.bytes(BytesView(encoded.data(), encoded.size()));
  }
  return w.take();
}

Result<EraLaunchMsg> EraLaunchMsg::decode(BytesView data) {
  serde::Reader r(data);
  EraLaunchMsg m;
  auto era = r.u64();
  if (!era) return make_error(era.error());
  m.config.era = era.value();
  auto count = r.varint();
  if (!count) return make_error(count.error());
  if (count.value() > 100'000) return make_error("era-launch: roster too large");
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto id = r.u64();
    if (!id) return make_error(id.error());
    m.config.endorsers.push_back(NodeId{id.value()});
  }
  auto cell_count = r.varint();
  if (!cell_count) return make_error(cell_count.error());
  if (cell_count.value() > 100'000) return make_error("era-launch: too many cells");
  for (std::uint64_t i = 0; i < cell_count.value(); ++i) {
    auto cell = r.string(64);
    if (!cell) return make_error(cell.error());
    m.config.cells.push_back(std::move(cell.value()));
  }
  auto height = r.u64();
  if (!height) return make_error(height.error());
  m.config_height = height.value();
  auto sender = r.u64();
  if (!sender) return make_error(sender.error());
  m.sender = NodeId{sender.value()};
  auto block_count = r.varint();
  if (!block_count) return make_error(block_count.error());
  if (block_count.value() > 1'000'000) return make_error("era-launch: too many blocks");
  for (std::uint64_t i = 0; i < block_count.value(); ++i) {
    auto raw = r.bytes();
    if (!raw) return make_error(raw.error());
    auto block = ledger::Block::decode(BytesView(raw.value().data(), raw.value().size()));
    if (!block) return make_error(block.error());
    m.blocks.push_back(std::move(block.value()));
  }
  if (!r.exhausted()) return make_error("era-launch: trailing bytes");
  return m;
}

// --- sealing ---------------------------------------------------------------------

namespace {

/// The authenticated payload, expressed as HMAC-streamable parts: body bytes
/// followed by the envelope's MessageType (little-endian u16, encoded into
/// the caller-provided scratch). See the seal() declaration for why the type
/// must be bound into the tag.
std::array<BytesView, 2> mac_parts(BytesView body, net::MessageType type,
                                   std::array<std::uint8_t, 2>& type_le) {
  type_le[0] = static_cast<std::uint8_t>(type & 0xffu);
  type_le[1] = static_cast<std::uint8_t>(type >> 8);
  return {body, BytesView(type_le.data(), type_le.size())};
}

}  // namespace

Bytes seal(const crypto::KeyRegistry& keys, NodeId sender, NodeId receiver, net::MessageType type,
           BytesView body, bool compute_macs) {
  GPBFT_PROFILE_SCOPE("crypto.seal");
  serde::Writer w;
  w.bytes(body);
  w.u64(sender.value);
  if (compute_macs) {
    std::array<std::uint8_t, 2> type_le;
    const auto parts = mac_parts(body, type, type_le);
    const std::array<std::uint8_t, 8> tag =
        keys.tag(sender, receiver, std::span<const BytesView>(parts.data(), parts.size()));
    w.raw(BytesView(tag.data(), tag.size()));
  } else {
    const std::array<std::uint8_t, 8> zero{};
    w.raw(BytesView(zero.data(), zero.size()));
  }
  Bytes out = w.take();
  assert(out.size() == sealed_size(body.size()));
  return out;
}

Result<BytesView> open_view(const crypto::KeyRegistry& keys, NodeId sender, NodeId receiver,
                            net::MessageType type, BytesView sealed, bool compute_macs) {
  GPBFT_PROFILE_SCOPE("crypto.open");
  serde::Reader r(sealed);
  auto body_view = r.bytes_view();
  if (!body_view) return make_error(body_view.error());
  const BytesView body = body_view.value();
  auto claimed_sender = r.u64();
  if (!claimed_sender) return make_error(claimed_sender.error());
  if (claimed_sender.value() != sender.value) {
    return make_error("seal: sender mismatch (spoofed envelope)");
  }
  auto tag = r.raw(8);
  if (!tag) return make_error(tag.error());
  if (!r.exhausted()) return make_error("seal: trailing bytes");

  if (compute_macs) {
    std::array<std::uint8_t, 2> type_le;
    const auto parts = mac_parts(body, type, type_le);
    const std::array<std::uint8_t, 8> expected =
        keys.tag(sender, receiver, std::span<const BytesView>(parts.data(), parts.size()));
    if (!crypto::constant_time_equal(BytesView(tag.value().data(), tag.value().size()),
                                     BytesView(expected.data(), expected.size()))) {
      return make_error("seal: HMAC verification failed (body or type forged)");
    }
  }
  return body;
}

Result<Bytes> open(const crypto::KeyRegistry& keys, NodeId sender, NodeId receiver,
                   net::MessageType type, BytesView sealed, bool compute_macs) {
  auto body = open_view(keys, sender, receiver, type, sealed, compute_macs);
  if (!body) return make_error(body.error());
  return Bytes(body.value().begin(), body.value().end());
}

Result<BytesView> open_envelope(const crypto::KeyRegistry& keys, NodeId receiver,
                                const net::Envelope& envelope, bool compute_macs) {
  const auto& job = envelope.open_job;
  // A released job is reusable when it checked at least as much as the
  // caller wants: same strictness, or a *passed* MACs-on verdict serving a
  // framing-only open (verification implies framing; a MACs-on failure
  // could be the tag alone, so it cannot answer for framing).
  if (job != nullptr && job->ready &&
      (job->macs == compute_macs || (job->macs && job->body.ok()))) {
    if (!job->body.ok()) return make_error(job->body.error());
    return BytesView(job->body.value().data(), job->body.value().size());
  }
  return open_view(keys, envelope.from, receiver, envelope.type, envelope.payload.view(),
                   compute_macs);
}

}  // namespace gpbft::pbft
