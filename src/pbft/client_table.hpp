// Per-client request bookkeeping (PBFT's client table, Castro-Liskov §4.1).
//
// Replicas record, per client, the last request they executed for it: its
// request id, digest and the height it committed at. A retransmission of
// that request is answered straight from the table — one map lookup, no
// chain index probe, no re-consensus — which is the reply-cache fast path
// retry storms hammer. The chain index remains the fallback for replays of
// *older* requests (a client can retransmit anything it never saw a REPLY
// for), so the table is an accelerator, never the source of truth.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "ledger/transaction.hpp"

namespace gpbft::pbft {

class ClientTable {
 public:
  struct Entry {
    RequestId last_request_id{0};
    crypto::Hash256 last_digest;
    Height last_height{0};
  };

  /// Records `tx` as the sender's most recent executed request. Later
  /// requests (by request id) displace earlier ones; replays of older ids
  /// leave the entry untouched, so `find` always describes the newest
  /// executed request per client.
  void note_executed(const ledger::Transaction& tx, Height height);

  /// The sender's entry, or nullptr if no request of theirs executed yet.
  [[nodiscard]] const Entry* find(NodeId sender) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::unordered_map<std::uint64_t, Entry> entries_;  // keyed by sender id
};

}  // namespace gpbft::pbft
