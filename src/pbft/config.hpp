// PBFT replica configuration.
#pragma once

#include <cstddef>

#include "common/sim_time.hpp"

namespace gpbft::pbft {

struct PbftConfig {
  /// Maximum transactions batched into one block proposal.
  std::size_t max_batch_size{8};

  /// Requests that close an accumulating batch immediately: the primary
  /// holds its proposal until this many requests queue (or the close
  /// timeout below passes). 1 reproduces the unbatched behaviour — propose
  /// as soon as the first request arrives — and keeps the event stream
  /// byte-identical to it, because no close timer is ever armed.
  std::size_t batch_close_size{1};

  /// Deadline for a partially filled batch: once its first request queues,
  /// the primary proposes no later than this much after it, whatever the
  /// occupancy. Only consulted when batch_close_size > 1.
  Duration batch_close_timeout = Duration::millis(250);

  /// Concurrent consensus instances the primary keeps in flight. 1 gives the
  /// strict one-at-a-time ordering whose queueing the paper's latency curves
  /// exhibit; larger values pipeline.
  std::size_t pipeline_depth{1};

  /// Log window above the low watermark within which sequences are accepted.
  SeqNum watermark_window{128};

  /// Executions between checkpoints (log GC).
  SeqNum checkpoint_interval{16};

  /// A request not executed within this time triggers a view change.
  Duration request_timeout = Duration::seconds(20);

  /// Backoff added per failed view change attempt.
  Duration view_change_timeout = Duration::seconds(10);

  /// When false, HMAC tags are accounted on the wire but not recomputed —
  /// a simulation-speed knob for large sweeps (correctness suites keep it
  /// on; see DESIGN.md). Tag bytes are always present either way.
  bool compute_macs{true};

  /// Two-phase mode (dBFT 1.0 style): an instance commits directly on a
  /// 2f+1 PREPARE quorum (the speaker's PRE-PREPARE counts as its vote);
  /// no COMMIT round is sent. One-block finality with one fewer phase —
  /// the delegated-BFT baseline of the paper's Table IV uses this.
  bool two_phase{false};
};

/// Byzantine behaviours injectable into a replica for fault testing.
enum class FaultMode {
  None,
  /// Crashed-silent: participates in nothing.
  Silent,
  /// Sends PREPAREs whose digest is corrupted (equivocation attempt).
  EquivocateDigest,
  /// As primary, proposes blocks whose Merkle root does not commit to the
  /// body (honest backups must reject them; the view change removes it).
  CorruptProposals,
  /// Floods forged geo-reports (in-cell jitter under the area-registry
  /// truthfulness tolerance) to hold a stationary timer while spamming the
  /// election table — the Sybil-burst election attack. Consensus messages
  /// stay honest; only G-PBFT's geo plane is attacked.
  SybilGeoReports,
};

}  // namespace gpbft::pbft
