// PBFT client — the model of an IoT device submitting transactions.
//
// Per §III-B1 of the paper, a client "will send the transaction to multiple
// endorsers at the same time" to survive message loss; we send to every
// committee member. A transaction counts as committed when f+1 matching
// REPLY messages arrive (matching digest and height); the recorded latency
// — submission to (f+1)-th matching reply — is exactly the quantity Fig. 3
// and Fig. 4 of the paper plot.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/rng.hpp"
#include "crypto/authenticator.hpp"
#include "net/network.hpp"
#include "pbft/config.hpp"
#include "pbft/messages.hpp"

namespace gpbft::pbft {

class Client : public net::INetNode {
 public:
  /// Invoked when a transaction commits: (digest, height, latency).
  using CommitCallback =
      std::function<void(const crypto::Hash256&, Height, Duration)>;

  Client(NodeId id, std::vector<NodeId> committee, net::Network& network,
         const crypto::KeyRegistry& keys, bool compute_macs = true);

  /// Attaches to the network and arms the retransmission tick: outstanding
  /// transactions whose backoff deadline passed are resubmitted (replicas
  /// deduplicate; already-committed ones answer from the reply cache).
  void start();

  /// Stops the retransmission tick so a simulation can drain to idle.
  void stop() { started_ = false; }

  /// Base retransmission interval; zero disables retries. Successive
  /// retries of one transaction back off exponentially from this base
  /// (doubling per attempt, capped at 8x) with deterministic jitter drawn
  /// from a per-client RNG stream forked off the simulator seed — so the
  /// retry flood after a partition heals is spread out instead of every
  /// client resending in the same tick.
  void set_retry_interval(Duration interval) { retry_interval_ = interval; }

  /// Hard ceiling on one backoff delay (applied after jitter, so setting a
  /// cap never perturbs the deterministic jitter stream). Zero = uncapped
  /// (the legacy 8x-base bound still applies).
  void set_max_backoff(Duration cap) { max_backoff_ = cap; }
  [[nodiscard]] Duration max_backoff() const { return max_backoff_; }

  // --- INetNode ---------------------------------------------------------------
  [[nodiscard]] NodeId id() const override { return id_; }
  void handle(const net::Envelope& envelope) override;

  /// Submits a transaction to the whole committee.
  void submit(const ledger::Transaction& tx);

  /// Updates the committee the client talks to (after an era switch).
  void set_committee(std::vector<NodeId> committee);

  void set_commit_callback(CommitCallback cb) { commit_cb_ = std::move(cb); }

  [[nodiscard]] std::uint64_t committed_count() const { return committed_count_; }
  [[nodiscard]] std::size_t outstanding() const { return outstanding_.size(); }

 private:
  struct Pending {
    TimePoint submitted_at;
    TimePoint last_sent_at;
    TimePoint next_retry_at;     // backoff deadline for the next resend
    std::uint32_t attempts{0};   // resends so far (drives the backoff)
    ledger::Transaction transaction;  // kept for retransmission
    // votes per (replica): height claimed; commit at f+1 matching heights.
    std::unordered_map<std::uint64_t, Height> votes;  // replica id -> height
  };

  void send_request(const ledger::Transaction& tx);
  void arm_retry_tick();
  void on_retry_tick();
  [[nodiscard]] Duration backoff_delay(std::uint32_t attempt);

  [[nodiscard]] std::size_t reply_quorum() const {
    return (committee_.size() - 1) / 3 + 1;  // f + 1
  }

  NodeId id_;
  std::vector<NodeId> committee_;
  net::Network& network_;
  const crypto::KeyRegistry& keys_;
  bool compute_macs_;

  std::unordered_map<crypto::Hash256, Pending> outstanding_;
  CommitCallback commit_cb_;
  std::uint64_t committed_count_{0};
  Duration retry_interval_ = Duration::seconds(20);
  Duration max_backoff_{0};  // hard delay ceiling; zero = uncapped
  Rng backoff_rng_;  // jitter stream, decorrelated from protocol randomness
  bool started_{false};
};

}  // namespace gpbft::pbft
