#include "pbft/client.hpp"

#include "obs/profiler.hpp"

#include <algorithm>
#include <map>
#include <memory>

namespace gpbft::pbft {

namespace {
/// Async-span correlation id for a request lifeline: the first 8 bytes of
/// the transaction digest (stable across nodes, unique per transaction).
std::uint64_t request_trace_id(const crypto::Hash256& digest) {
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 8; ++i) id = (id << 8) | digest.bytes[i];
  return id;
}
}  // namespace

Client::Client(NodeId id, std::vector<NodeId> committee, net::Network& network,
               const crypto::KeyRegistry& keys, bool compute_macs)
    : id_(id),
      committee_(std::move(committee)),
      network_(network),
      keys_(keys),
      compute_macs_(compute_macs),
      // fork() is const: deriving the jitter stream does not perturb the
      // simulator's main stream, so adding a client leaves every other
      // random draw in the run unchanged.
      backoff_rng_(network.simulator().rng().fork(0xc11e47b0ull ^ id.value)) {
  std::sort(committee_.begin(), committee_.end());
}

void Client::set_committee(std::vector<NodeId> committee) {
  committee_ = std::move(committee);
  std::sort(committee_.begin(), committee_.end());
}

void Client::start() {
  if (started_) return;
  started_ = true;
  network_.attach(this);
  arm_retry_tick();
}

void Client::arm_retry_tick() {
  if (retry_interval_.ns <= 0) return;
  network_.simulator().schedule(retry_interval_ / 2, [this]() {
    if (!started_) return;
    on_retry_tick();
    arm_retry_tick();
  });
}

void Client::on_retry_tick() {
  const TimePoint now = network_.simulator().now();
  for (auto& [digest, pending] : outstanding_) {
    if (now >= pending.next_retry_at) {
      ++pending.attempts;
      pending.last_sent_at = now;
      pending.next_retry_at = now + backoff_delay(pending.attempts);
      network_.telemetry().count("client.retries", id_);
      network_.telemetry().instant("request.retry", "client", id_,
                                   {{"tx", digest.short_hex()},
                                    {"attempt", std::to_string(pending.attempts)}});
      send_request(pending.transaction);
    }
  }
}

Duration Client::backoff_delay(std::uint32_t attempt) {
  // Bounded exponential backoff: base, 2x, 4x, then capped at 8x the base,
  // each scaled by jitter U[0.75, 1.25) so clients desynchronize. The
  // jitter draw happens before the max_backoff_ clamp, so configuring a
  // cap never shifts the RNG stream — retry schedules stay deterministic
  // across runs and restarts whether or not a cap is set.
  static constexpr std::uint32_t kMaxShift = 3;
  const std::uint32_t shift = std::min(attempt, kMaxShift);
  const double jitter = backoff_rng_.uniform_real(0.75, 1.25);
  const double delay_ns =
      static_cast<double>(retry_interval_.ns) * static_cast<double>(1u << shift) * jitter;
  Duration delay{static_cast<std::int64_t>(delay_ns)};
  if (max_backoff_.ns > 0 && delay > max_backoff_) delay = max_backoff_;
  return delay;
}

void Client::send_request(const ledger::Transaction& tx) {
  ClientRequest request{tx};
  const Bytes body = request.encode();
  if (!compute_macs_) {
    // Receiver-independent seal: one buffer, refcounted across the roster.
    const net::Payload payload{
        seal(keys_, id_, NodeId{0}, msg_type::kClientRequest, BytesView(body.data(), body.size()),
             false)};
    for (NodeId endorser : committee_) {
      network_.send(net::Envelope{id_, endorser, msg_type::kClientRequest, payload});
    }
    return;
  }
  if (network_.mac_plane_active()) {
    // Per-receiver seals deferred to the worker plane: one shared body
    // buffer, each receiver's HMAC computed off the simulation thread.
    const auto shared = std::make_shared<const Bytes>(body);
    for (NodeId endorser : committee_) {
      net::Envelope envelope;
      envelope.from = id_;
      envelope.to = endorser;
      envelope.type = msg_type::kClientRequest;
      envelope.payload = net::Payload(
          sealed_size(shared->size()), [&keys = keys_, from = id_, endorser, shared]() {
            return seal(keys, from, endorser, msg_type::kClientRequest,
                        BytesView(shared->data(), shared->size()), /*compute_macs=*/true);
          });
      network_.send(std::move(envelope));
    }
    return;
  }
  for (NodeId endorser : committee_) {
    net::Envelope envelope;
    envelope.from = id_;
    envelope.to = endorser;
    envelope.type = msg_type::kClientRequest;
    envelope.payload =
        seal(keys_, id_, endorser, msg_type::kClientRequest,
             BytesView(body.data(), body.size()), compute_macs_);
    network_.send(std::move(envelope));
  }
}

void Client::submit(const ledger::Transaction& tx) {
  const crypto::Hash256 digest = tx.digest();
  auto [it, inserted] = outstanding_.try_emplace(digest);
  if (inserted) {
    it->second.submitted_at = network_.simulator().now();
    it->second.transaction = tx;
    network_.telemetry().count("client.submitted", id_);
    network_.telemetry().async_begin(request_trace_id(digest), id_, "request", "client",
                                     {{"tx", digest.short_hex()}});
  }
  it->second.last_sent_at = network_.simulator().now();
  it->second.next_retry_at = it->second.last_sent_at + backoff_delay(it->second.attempts);
  send_request(tx);
}

void Client::handle(const net::Envelope& envelope) {
  GPBFT_PROFILE_SCOPE("pbft.client.handle");
  if (envelope.type != msg_type::kReply) return;  // not addressed to a client role
  auto body = open_envelope(keys_, id_, envelope, compute_macs_);
  if (!body) {
    network_.note_rejected(envelope.type);
    return;
  }
  auto reply = Reply::decode(body.value());
  if (!reply) {
    network_.note_rejected(envelope.type);
    return;
  }

  const auto it = outstanding_.find(reply.value().tx_digest);
  if (it == outstanding_.end()) return;  // already committed or unknown

  Pending& pending = it->second;
  pending.votes[reply.value().replica.value] = reply.value().height;

  // Count the most common claimed height; commit on f+1 agreement.
  std::map<Height, std::size_t> tally;
  for (const auto& [replica, height] : pending.votes) ++tally[height];
  for (const auto& [height, count] : tally) {
    if (count >= reply_quorum()) {
      const Duration latency = network_.simulator().now() - pending.submitted_at;
      ++committed_count_;
      const crypto::Hash256 digest = reply.value().tx_digest;
      outstanding_.erase(it);
      obs::Telemetry& tel = network_.telemetry();
      tel.count("client.committed", id_);
      tel.observe("client.request_seconds", latency.to_seconds(), id_);
      tel.async_end(request_trace_id(digest), id_, "request", "client",
                    {{"height", std::to_string(height)}});
      if (commit_cb_) commit_cb_(digest, height, latency);
      return;
    }
  }
}

}  // namespace gpbft::pbft
